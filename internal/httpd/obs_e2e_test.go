package httpd

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"tbnet/internal/fleet"
	"tbnet/internal/obs"
)

// TestE2ETraceSlowRequest is the observability acceptance run: a paced
// (wall-slow) request tagged with a client X-Request-Id must be recoverable
// end to end — its id surfaces as the exemplar on a slow bucket of the
// /metrics wall-duration histogram, /debug/trace?min_ms= returns its full
// span timeline whose queue/batch/world stages sum to within 5% of the
// observed wall time, and the slow-request journal carries the breakdown.
// The debug surface itself sits behind API-key auth.
func TestE2ETraceSlowRequest(t *testing.T) {
	tr := obs.NewTracer(256)
	var logBuf bytes.Buffer
	var logMu syncWriter
	logMu.w = &logBuf
	s, _ := testServer(t, func(c *fleet.Config) {
		// ~450ms modeled wall per request: the paced stage dwarfs host
		// scheduling noise (a few ms even on a loaded CI box), so the
		// stage-sum-vs-wall 5% assertion measures accounting, not jitter.
		c.PaceScale = 300
		c.Tracer = tr
	}, func(c *Config) {
		c.Tracer = tr
		c.SlowThreshold = 5 * time.Millisecond
		c.EnablePprof = true
		c.APIKeys = map[string]string{"k-obs": "observers"}
		c.Logger = slog.New(slog.NewTextHandler(&logMu, nil))
	})
	base := startDaemon(t, s)

	do := func(req *http.Request) *http.Response {
		t.Helper()
		req.Header.Set("X-API-Key", "k-obs")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	infer := func(id string) time.Duration {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/infer", bytes.NewReader(inferBody(t, "", randSample(9))))
		req.Header.Set("Content-Type", "application/json")
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		start := time.Now()
		resp := do(req)
		wall := time.Since(start)
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("infer = %d: %s", resp.StatusCode, b)
		}
		return wall
	}

	// Two warm requests, then the tagged one last so its exemplar is the
	// newest in its histogram bucket.
	infer("")
	infer("")
	clientWall := infer("trace-me-42")

	// The timeline is recoverable through /debug/trace?min_ms= (with a key).
	req, _ := http.NewRequest(http.MethodGet, base+"/debug/trace?min_ms=10", nil)
	resp := do(req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace = %d", resp.StatusCode)
	}
	var dump debugTraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Capacity != 256 || dump.Returned != len(dump.Spans) || dump.Returned < 3 {
		t.Fatalf("trace dump header = %+v", dump)
	}
	var span obs.SpanData
	found := false
	for _, d := range dump.Spans {
		if d.ID == "trace-me-42" {
			span, found = d, true
		}
	}
	if !found {
		t.Fatalf("tagged span missing from /debug/trace: %+v", dump.Spans)
	}
	if span.Model != fleet.DefaultModel || span.Node == "" || span.Err {
		t.Fatalf("span identity = %+v", span)
	}
	for _, stage := range []string{"ingress", "queued", "batched", "ree", "tee", "pace", "respond"} {
		if span.StageMs(stage) <= 0 {
			t.Errorf("stage %q missing from timeline: %s", stage, span.StagesString())
		}
	}
	var sum float64
	for _, sd := range span.Stages {
		sum += sd.Ms
	}
	if span.WallMs > float64(clientWall)/1e6 {
		t.Errorf("span wall %.2fms exceeds client-observed wall %.2fms", span.WallMs, float64(clientWall)/1e6)
	}
	if sum < span.WallMs*0.95 || sum > span.WallMs*1.05 {
		t.Errorf("stage sum %.2fms not within 5%% of wall %.2fms (%s)", sum, span.WallMs, span.StagesString())
	}

	// The request id surfaces as a histogram exemplar on its (slow) bucket.
	req, _ = http.NewRequest(http.MethodGet, base+"/metrics", nil)
	mresp := do(req)
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	families := parsePromText(t, string(body))
	for _, want := range []string{
		"tbnet_build_info", "tbnet_http_request_duration_seconds",
		"tbnet_fleet_latency_seconds", "tbnet_model_latency_seconds",
		"tbnet_device_latency_seconds", "tbnet_http_slow_requests_total",
	} {
		if families[want] == 0 {
			t.Fatalf("scrape lacks family %s; got %v", want, families)
		}
	}
	exemplarRe := regexp.MustCompile(
		`(?m)^tbnet_http_request_duration_seconds_bucket\{le="[^"]+"\} \d+ # \{trace_id="trace-me-42"\}`)
	if !exemplarRe.MatchString(string(body)) {
		t.Fatalf("tagged request not exemplared on the wall-duration histogram:\n%s",
			grepLines(string(body), "tbnet_http_request_duration_seconds"))
	}
	if !strings.Contains(string(body), `tbnet_build_info{version="`) {
		t.Fatal("build info gauge lacks version label")
	}

	// The slow journal logged the breakdown.
	logged := logBuf.String()
	if !strings.Contains(logged, "slow request") || !strings.Contains(logged, "trace-me-42") ||
		!strings.Contains(logged, "stages=") {
		t.Fatalf("slow journal missing span breakdown:\n%s", logged)
	}

	// The debug surface is behind auth: no key, no timelines or profiles.
	for _, path := range []string{"/debug/trace", "/debug/pprof/cmdline"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("GET %s without key = %d, want 401", path, resp.StatusCode)
		}
	}
	req, _ = http.NewRequest(http.MethodGet, base+"/debug/pprof/cmdline", nil)
	presp := do(req)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with key = %d, want 200", presp.StatusCode)
	}
}

// TestDebugTraceDisabledAndBadParams: without a tracer the endpoint 404s;
// malformed filters answer 400.
func TestDebugTraceDisabledAndBadParams(t *testing.T) {
	s, _ := testServer(t, nil, nil)
	if w := getPath(t, s.Handler(), "/debug/trace"); w.Code != http.StatusNotFound {
		t.Fatalf("/debug/trace without tracer = %d, want 404", w.Code)
	}
	tr := obs.NewTracer(16)
	s2, _ := testServer(t, func(c *fleet.Config) { c.Tracer = tr }, func(c *Config) { c.Tracer = tr })
	if w := getPath(t, s2.Handler(), "/debug/trace?min_ms=banana"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad min_ms = %d, want 400", w.Code)
	}
	if w := getPath(t, s2.Handler(), "/debug/trace?limit=-3"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", w.Code)
	}
	if w := getPath(t, s2.Handler(), "/debug/trace"); w.Code != http.StatusOK {
		t.Fatalf("empty trace dump = %d, want 200: %s", w.Code, w.Body)
	}
}

// grepLines returns the lines of s containing substr, for failure messages.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// syncWriter serializes concurrent slog writes into a bytes.Buffer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(b)
}
