package httpd

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tbnet/internal/obs"
)

// ErrRateLimited reports a request refused by the per-tenant token bucket:
// the tenant exhausted its burst allowance and its sustained rate. The
// answer is 429 with a Retry-After hint; the request never reached the
// fleet.
var ErrRateLimited = errors.New("httpd: rate limited")

// Middleware is one layer of the request-processing chain: it wraps a
// handler with an independent concern (recovery, identity, logging,
// admission) and either passes the request inward or answers it itself.
type Middleware func(http.Handler) http.Handler

// Chain wraps h in the given middlewares, first argument outermost — the
// request traverses them in argument order on the way in.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// ctxKey is the private type of the chain's context keys.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyTenant
)

// RequestIDFrom returns the request ID the chain assigned (or accepted) for
// this request, "" outside a RequestID-wrapped handler.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// TenantFrom returns the tenant name Auth attributed to this request;
// "anonymous" when authentication is disabled or the path is exempt.
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(ctxKeyTenant).(string)
	if t == "" {
		return "anonymous"
	}
	return t
}

// requestIDHeader is the request/response header carrying the request ID.
const requestIDHeader = "X-Request-Id"

var requestSeq atomic.Uint64

// newRequestID mints a unique id: a random prefix (per process) plus a
// monotone sequence number, cheap enough for every request.
var requestIDPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "tbnet"
	}
	return hex.EncodeToString(b[:])
}()

func newRequestID() string {
	return fmt.Sprintf("%s-%06d", requestIDPrefix, requestSeq.Add(1))
}

// RequestID assigns every request an ID — honouring one the client already
// sent in X-Request-Id — exposes it to inner layers via RequestIDFrom, and
// echoes it on the response, so one ID follows a request through client
// logs, the daemon's structured log, and the answer.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(requestIDHeader)
			if id == "" || len(id) > 128 {
				id = newRequestID()
			}
			w.Header().Set(requestIDHeader, id)
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id)))
		})
	}
}

// statusRecorder captures the status code and body size a handler wrote,
// for the log line and the tracing middleware's error flag.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// recorderFor wraps w in a statusRecorder, reusing one an outer middleware
// already installed so Tracing and Logging observe the same status.
func recorderFor(w http.ResponseWriter) *statusRecorder {
	if sr, ok := w.(*statusRecorder); ok {
		return sr
	}
	return &statusRecorder{ResponseWriter: w}
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes (the NDJSON batch endpoint) through the
// recorder.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// untraced lists the operational endpoints the tracing middleware skips:
// scrapes and probes would otherwise churn the bounded span ring and evict
// the inference timelines it exists to retain.
var untraced = map[string]bool{"/healthz": true, "/metrics": true}

// Tracing starts a per-request span in the tracer ring — under the ID the
// RequestID layer assigned, so the span joins client logs, the request log,
// and histogram exemplars — carries it inward via the request context for
// the serving layers to fill in, and seals it with the response status once
// the handler returns. A nil tracer leaves the chain untouched. Probe and
// scrape paths are not traced (see untraced).
func Tracing(tr *obs.Tracer) Middleware {
	if tr == nil {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if untraced[r.URL.Path] || strings.HasPrefix(r.URL.Path, "/debug/") {
				next.ServeHTTP(w, r)
				return
			}
			span := tr.Start(RequestIDFrom(r.Context()))
			rec := recorderFor(w)
			next.ServeHTTP(rec, r.WithContext(obs.ContextWith(r.Context(), span)))
			span.Finish(rec.status >= http.StatusInternalServerError)
		})
	}
}

// SlowLog configures the sampled slow-request journal inside the Logging
// middleware. The zero value disables it.
type SlowLog struct {
	// Threshold marks a request slow once its wall duration reaches it;
	// 0 disables the journal.
	Threshold time.Duration
	// MinGap is the sampling interval: at most one journal line per MinGap,
	// with the number of suppressed slow requests carried on the next line.
	// 0 journals every slow request.
	MinGap time.Duration
}

// Logging emits one structured line per request — method, path, status,
// bytes written, duration, tenant, and request ID — feeds the per-status
// counters and the wall-duration histogram behind /metrics, and keeps the
// sampled slow-request journal: a request at or over slow.Threshold gets a
// WARN line carrying its full span stage breakdown (queue wait, batching,
// REE/TEE execution, pacing), the data needed to attribute the latency
// without re-running the request. It sits inside RequestID and Tracing (so
// the ID and the live span are in context) and outside the admission layers
// (so refusals are logged too).
func Logging(log *slog.Logger, m *httpMetrics, slow SlowLog) Middleware {
	var lastSlow atomic.Int64   // unix ns of the last journal line
	var suppressed atomic.Int64 // slow requests skipped by sampling since then
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			rec := recorderFor(w)
			next.ServeHTTP(rec, r)
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			dur := time.Since(start)
			id := RequestIDFrom(r.Context())
			if m != nil {
				m.observe(rec.status)
				m.reqDur.Observe(dur.Seconds(), id)
			}
			log.Info("request",
				"request_id", id,
				"tenant", TenantFrom(r.Context()),
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"bytes", rec.bytes,
				"duration_ms", float64(dur.Microseconds())/1e3,
			)
			if slow.Threshold <= 0 || dur < slow.Threshold {
				return
			}
			if m != nil {
				m.slow.Add(1)
			}
			// Sampling: claim the journal slot only if MinGap has passed
			// since the last line; otherwise count the suppression.
			now := time.Now().UnixNano()
			last := lastSlow.Load()
			if now-last < int64(slow.MinGap) || !lastSlow.CompareAndSwap(last, now) {
				suppressed.Add(1)
				return
			}
			attrs := []any{
				"request_id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"duration_ms", float64(dur.Microseconds()) / 1e3,
				"threshold_ms", float64(slow.Threshold.Microseconds()) / 1e3,
				"suppressed", suppressed.Swap(0),
			}
			if d, ok := obs.FromContext(r.Context()).Data(); ok {
				attrs = append(attrs,
					"model", d.Model,
					"node", d.Node,
					"stages", d.StagesString(),
				)
			}
			log.Warn("slow request", attrs...)
		})
	}
}

// Recover converts a handler panic into a 500 answer and a logged stack
// marker instead of a dead connection and a crashed daemon. It is the
// outermost layer, so a bug anywhere inside the chain cannot take the
// process down.
func Recover(log *slog.Logger, m *httpMetrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					if m != nil {
						m.panics.Add(1)
						m.observe(http.StatusInternalServerError)
					}
					log.Error("panic recovered",
						"request_id", RequestIDFrom(r.Context()),
						"path", r.URL.Path,
						"panic", fmt.Sprint(v),
					)
					// The header may already be out if the handler panicked
					// mid-stream; in that case the connection is poisoned
					// anyway and this write is a no-op.
					writeJSONError(w, r, http.StatusInternalServerError, "internal error", 0)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// authTenant resolves the request's API key. The key travels either as
// "Authorization: Bearer <key>" or in "X-API-Key".
func authTenant(r *http.Request, keys map[string]string) (string, bool) {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
			key = strings.TrimPrefix(h, "Bearer ")
		}
	}
	tenant, ok := keys[key]
	return tenant, ok && key != ""
}

// Auth enforces API-key authentication on every non-exempt path and records
// the key's tenant in the request context for rate limiting and logging.
// With an empty key set the layer only stamps the anonymous tenant —
// authentication is disabled, not bypassed-by-accident (the chain shape is
// identical either way).
func Auth(keys map[string]string, exempt ...string) Middleware {
	exemptSet := make(map[string]bool, len(exempt))
	for _, p := range exempt {
		exemptSet[p] = true
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if len(keys) == 0 || exemptSet[r.URL.Path] {
				next.ServeHTTP(w, r)
				return
			}
			tenant, ok := authTenant(r, keys)
			if !ok {
				writeJSONError(w, r, http.StatusUnauthorized, "missing or unknown API key", 0)
				return
			}
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKeyTenant, tenant)))
		})
	}
}

// bucket is one tenant's token bucket.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// limiterPool lazily allocates one bucket per tenant. Buckets never share
// tokens: one tenant exhausting its budget cannot starve another.
type limiterPool struct {
	mu      sync.Mutex
	buckets map[string]*bucket
	rps     float64
	burst   float64
}

func (lp *limiterPool) allow(tenant string, now time.Time) bool {
	lp.mu.Lock()
	b := lp.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: lp.burst, last: now}
		lp.buckets[tenant] = b
	}
	lp.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += now.Sub(b.last).Seconds() * lp.rps
	b.last = now
	if b.tokens > lp.burst {
		b.tokens = lp.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RateLimitBy enforces the per-tenant token bucket on every non-exempt
// path: each tenant (as attributed by Auth; "anonymous" without keys) gets
// its own bucket of rl.Burst tokens refilled at rl.RPS per second, and a
// request finding the bucket empty is answered 429 with Retry-After — it
// never reaches the fleet. A zero rl disables the layer.
func RateLimitBy(rl RateLimit, retryAfter time.Duration, m *httpMetrics, exempt ...string) Middleware {
	if rl.RPS <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	lp := &limiterPool{
		buckets: make(map[string]*bucket),
		rps:     rl.RPS,
		burst:   float64(rl.Burst),
	}
	exemptSet := make(map[string]bool, len(exempt))
	for _, p := range exempt {
		exemptSet[p] = true
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if exemptSet[r.URL.Path] {
				next.ServeHTTP(w, r)
				return
			}
			if !lp.allow(TenantFrom(r.Context()), time.Now()) {
				if m != nil {
					m.rateLimited.Add(1)
				}
				writeError(w, r, ErrRateLimited, retryAfter)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
