package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"tbnet/internal/fleet"
	"tbnet/internal/serve"
	"tbnet/internal/tensor"
)

// TestNewHTTPTargetValidation: a load test must refuse a bad target URL
// immediately with ErrSpec — before any traffic or model build — and accept
// well-formed http/https bases.
func TestNewHTTPTargetValidation(t *testing.T) {
	bad := []string{
		"",
		"://nope",
		"ftp://host:21",
		"http://",
		"localhost:8080", // scheme-less: parses as scheme "localhost"
		"/just/a/path",
	}
	for _, raw := range bad {
		if _, err := NewHTTPTarget(raw); !errors.Is(err, ErrSpec) {
			t.Errorf("NewHTTPTarget(%q) err = %v, want ErrSpec", raw, err)
		}
	}
	good := []string{
		"http://127.0.0.1:8080",
		"https://edge.example.com",
		"http://host:9/", // trailing slash trimmed
	}
	for _, raw := range good {
		if _, err := NewHTTPTarget(raw); err != nil {
			t.Errorf("NewHTTPTarget(%q) err = %v, want nil", raw, err)
		}
	}
}

// TestHTTPTargetOutcomeMapping: wire statuses map back onto the serving
// sentinels, so the harness classifies shed/deadline/unknown identically for
// local fleets and remote daemons.
func TestHTTPTargetOutcomeMapping(t *testing.T) {
	var status int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if status == http.StatusOK {
			_ = json.NewEncoder(w).Encode(map[string]any{"label": 3})
			return
		}
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(map[string]any{"error": "synthetic", "status": status})
	}))
	defer srv.Close()
	tgt, err := NewHTTPTarget(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 4, 4)

	status = http.StatusOK
	label, err := tgt.InferModel(context.Background(), "m", x)
	if err != nil || label != 3 {
		t.Fatalf("200: label %d err %v", label, err)
	}
	cases := []struct {
		status int
		want   error
	}{
		{http.StatusTooManyRequests, fleet.ErrOverloaded},
		{http.StatusServiceUnavailable, fleet.ErrOverloaded},
		{http.StatusGatewayTimeout, context.DeadlineExceeded},
		{http.StatusNotFound, serve.ErrUnknownModel},
	}
	for _, tc := range cases {
		status = tc.status
		if _, err := tgt.InferModel(context.Background(), "m", x); !errors.Is(err, tc.want) {
			t.Errorf("status %d: err = %v, want %v", tc.status, err, tc.want)
		}
	}
	status = http.StatusTeapot
	if _, err := tgt.InferModel(context.Background(), "m", x); err == nil {
		t.Error("unexpected status must error")
	}
}

// TestHTTPTargetModels: the models listing decodes and refuses an empty
// inventory.
func TestHTTPTargetModels(t *testing.T) {
	empty := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/models" {
			t.Errorf("path = %s", r.URL.Path)
		}
		models := []map[string]any{{"name": "default", "default": true, "sample_shape": []int{1, 3, 16, 16}}}
		if empty {
			models = nil
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"default": "default", "models": models})
	}))
	defer srv.Close()
	tgt, err := NewHTTPTarget(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := tgt.Models(context.Background())
	if err != nil || len(ms) != 1 || ms[0].Name != "default" || !ms[0].Default {
		t.Fatalf("models = %+v, err %v", ms, err)
	}
	if len(ms[0].SampleShape) != 4 {
		t.Fatalf("sample shape = %v", ms[0].SampleShape)
	}
	empty = true
	if _, err := tgt.Models(context.Background()); err == nil {
		t.Fatal("empty inventory accepted")
	}
}
