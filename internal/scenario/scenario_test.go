package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbnet/internal/fleet"
	"tbnet/internal/tensor"
)

func mustArrivals(t *testing.T, ph Phase, seed uint64) []Arrival {
	t.Helper()
	out, err := ph.Arrivals(seed)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestUniformArrivalCount(t *testing.T) {
	ph := Phase{Name: "u", Pattern: Uniform, Rate: 100, Duration: time.Second}
	got := len(mustArrivals(t, ph, 1))
	if got < 98 || got > 101 {
		t.Fatalf("uniform 100 req/s × 1s synthesized %d arrivals", got)
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	ph := Phase{Name: "p", Pattern: Poisson, Rate: 200, Duration: time.Second}
	a := mustArrivals(t, ph, 7)
	b := mustArrivals(t, ph, 7)
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d", i)
		}
	}
	c := mustArrivals(t, ph, 8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical Poisson traces")
	}
}

func TestBurstBeatsUniformVolume(t *testing.T) {
	base := Phase{Name: "u", Pattern: Uniform, Rate: 50, Duration: time.Second}
	burst := Phase{Name: "b", Pattern: Burst, Rate: 50, PeakRate: 400,
		Period: 500 * time.Millisecond, Duration: time.Second}
	nu := len(mustArrivals(t, base, 1))
	nb := len(mustArrivals(t, burst, 1))
	if nb <= nu {
		t.Fatalf("burst synthesized %d arrivals, uniform %d — no burst happened", nb, nu)
	}
	// Arrivals stay inside the phase.
	for _, a := range mustArrivals(t, burst, 1) {
		if a.At < 0 || a.At >= burst.Duration {
			t.Fatalf("arrival at %v outside phase of %v", a.At, burst.Duration)
		}
	}
}

func TestRampGapsShrink(t *testing.T) {
	ph := Phase{Name: "r", Pattern: Ramp, Rate: 20, PeakRate: 400, Duration: time.Second}
	as := mustArrivals(t, ph, 1)
	if len(as) < 10 {
		t.Fatalf("ramp synthesized only %d arrivals", len(as))
	}
	first := as[1].At - as[0].At
	last := as[len(as)-1].At - as[len(as)-2].At
	if last >= first {
		t.Fatalf("ramp interarrival grew: first gap %v, last gap %v", first, last)
	}
}

func TestDiurnalVolumeBetweenBounds(t *testing.T) {
	ph := Phase{Name: "d", Pattern: Diurnal, Rate: 50, PeakRate: 150,
		Period: time.Second, Duration: time.Second}
	got := len(mustArrivals(t, ph, 1))
	// Mean rate of the sinusoid is (base+peak)/2 = 100 req/s.
	if got < 80 || got > 120 {
		t.Fatalf("diurnal 50..150 req/s × 1s synthesized %d arrivals, want ≈100", got)
	}
}

func TestModelMixingRoughlyHonoursWeights(t *testing.T) {
	ph := Phase{Name: "m", Pattern: Uniform, Rate: 1000, Duration: time.Second,
		Models: []ModelShare{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}}
	counts := map[string]int{}
	for _, a := range mustArrivals(t, ph, 2) {
		counts[a.Model]++
	}
	total := counts["a"] + counts["b"]
	if total < 990 {
		t.Fatalf("only %d arrivals", total)
	}
	frac := float64(counts["a"]) / float64(total)
	if frac < 0.65 || frac > 0.85 {
		t.Fatalf("model a got %.2f of traffic, want ≈0.75", frac)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []Phase{
		{Name: "", Pattern: Uniform, Rate: 1, Duration: time.Second},
		{Name: "x", Pattern: "squiggle", Rate: 1, Duration: time.Second},
		{Name: "x", Pattern: Uniform, Rate: 0, Duration: time.Second},
		{Name: "x", Pattern: Uniform, Rate: 1, Duration: 0},
		{Name: "x", Pattern: Uniform, Rate: 10, PeakRate: 5, Duration: time.Second},
		{Name: "x", Pattern: Replay},
		{Name: "x", Pattern: Uniform, Rate: 1, Duration: time.Second,
			Models: []ModelShare{{Name: "", Weight: 1}}},
		{Name: "x", Pattern: Uniform, Rate: 1, Duration: time.Second,
			Models: []ModelShare{{Name: "a", Weight: 0}}},
	}
	for i, ph := range cases {
		if _, err := ph.Arrivals(1); !errors.Is(err, ErrSpec) {
			t.Fatalf("case %d: err = %v, want ErrSpec", i, err)
		}
	}
}

func TestParseTrace(t *testing.T) {
	in := `# demo trace
0.5 modelB
0.0
  0.25   # unnamed mid arrival

1.0 modelA
`
	got, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Arrival{
		{At: 0},
		{At: 250 * time.Millisecond},
		{At: 500 * time.Millisecond, Model: "modelB"},
		{At: time.Second, Model: "modelA"},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d arrivals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "abc", "-1.0", "1.0 m extra", "inf"} {
		if _, err := ParseTrace(strings.NewReader(in)); !errors.Is(err, ErrTrace) {
			t.Fatalf("ParseTrace(%q) err = %v, want ErrTrace", in, err)
		}
	}
}

// stubTarget answers instantly, shedding every shedEvery-th call, and counts
// traffic per model.
type stubTarget struct {
	mu        sync.Mutex
	perModel  map[string]int
	calls     atomic.Int64
	shedEvery int64
	failEvery int64
}

func (s *stubTarget) InferModel(ctx context.Context, model string, x *tensor.Tensor) (int, error) {
	s.mu.Lock()
	if s.perModel == nil {
		s.perModel = map[string]int{}
	}
	s.perModel[model]++
	s.mu.Unlock()
	n := s.calls.Add(1)
	if s.shedEvery > 0 && n%s.shedEvery == 0 {
		return 0, fmt.Errorf("stub: %w", fleet.ErrOverloaded)
	}
	if s.failEvery > 0 && n%s.failEvery == 0 {
		return 0, errors.New("stub: boom")
	}
	return 0, nil
}

func testSample(i int) *tensor.Tensor { return tensor.New(1, 3, 4, 4) }

func TestRunClassifiesOutcomes(t *testing.T) {
	tgt := &stubTarget{shedEvery: 5, failEvery: 7}
	spec := Spec{
		Name: "unit",
		Seed: 1,
		Phases: []Phase{
			{Name: "p1", Pattern: Uniform, Rate: 400, Duration: 250 * time.Millisecond},
			{Name: "p2", Pattern: Poisson, Rate: 400, Duration: 250 * time.Millisecond},
		},
	}
	res, err := Run(context.Background(), tgt, spec, testSample)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("%d phases, want 2", len(res.Phases))
	}
	if res.Offered == 0 || res.Offered != res.Served+res.Shed+res.Failed {
		t.Fatalf("outcome counts don't add up: %d = %d + %d + %d",
			res.Offered, res.Served, res.Shed, res.Failed)
	}
	if res.Shed == 0 || res.Failed == 0 {
		t.Fatalf("stub shed/fail not classified: shed %d failed %d", res.Shed, res.Failed)
	}
	for _, ph := range res.Phases {
		if ph.Offered != ph.Served+ph.Shed+ph.Failed {
			t.Fatalf("phase %q counts don't add up", ph.Name)
		}
		if ph.DurationSec <= 0 || ph.OfferedRPS <= 0 {
			t.Fatalf("phase %q missing rates: %+v", ph.Name, ph)
		}
		if ph.Served > 0 && ph.P50Ms < 0 {
			t.Fatalf("phase %q negative latency", ph.Name)
		}
	}
	if len(res.PerModel) != 1 || res.PerModel[0].Model != defaultModelName {
		t.Fatalf("per-model totals = %+v", res.PerModel)
	}
	if res.PerModel[0].Offered != res.Offered {
		t.Fatalf("per-model offered %d, want %d", res.PerModel[0].Offered, res.Offered)
	}
}

func TestRunMixedModelsReachTheTarget(t *testing.T) {
	tgt := &stubTarget{}
	spec := Spec{
		Seed: 3,
		Phases: []Phase{{
			Name: "mix", Pattern: Uniform, Rate: 500, Duration: 200 * time.Millisecond,
			Models: []ModelShare{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}},
		}},
	}
	res, err := Run(context.Background(), tgt, spec, testSample)
	if err != nil {
		t.Fatal(err)
	}
	tgt.mu.Lock()
	defer tgt.mu.Unlock()
	if tgt.perModel["a"] == 0 || tgt.perModel["b"] == 0 {
		t.Fatalf("mixed traffic did not reach both models: %+v", tgt.perModel)
	}
	if len(res.PerModel) != 2 {
		t.Fatalf("per-model rows = %+v", res.PerModel)
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	tgt := &stubTarget{}
	spec := Spec{Phases: []Phase{
		{Name: "long", Pattern: Uniform, Rate: 10, Duration: 10 * time.Second},
	}}
	start := time.Now()
	_, err := Run(ctx, tgt, spec, testSample)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not stop the scenario promptly")
	}
}

func TestRunValidatesUpFront(t *testing.T) {
	tgt := &stubTarget{}
	if _, err := Run(context.Background(), nil, Spec{Phases: []Phase{{Name: "x", Pattern: Uniform, Rate: 1, Duration: time.Second}}}, testSample); !errors.Is(err, ErrSpec) {
		t.Fatalf("nil target err = %v", err)
	}
	if _, err := Run(context.Background(), tgt, Spec{}, testSample); !errors.Is(err, ErrSpec) {
		t.Fatalf("no phases err = %v", err)
	}
	bad := Spec{Phases: []Phase{
		{Name: "ok", Pattern: Uniform, Rate: 100, Duration: time.Second},
		{Name: "bad", Pattern: "nope", Rate: 1, Duration: time.Second},
	}}
	start := time.Now()
	if _, err := Run(context.Background(), tgt, bad, testSample); !errors.Is(err, ErrSpec) {
		t.Fatalf("bad later phase err = %v", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("validation ran the good phase before rejecting the bad one")
	}
}
