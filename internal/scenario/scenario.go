// Package scenario is TBNet's trace-driven workload harness: it drives a
// serving target (typically a fleet) with realistic open-loop traffic shapes
// — replayed arrival traces, or synthesized uniform / Poisson / bursty /
// ramping / diurnal patterns, optionally mixed across several hosted models
// — and reports what the serving layer did under each phase of load.
//
// The harness is open-loop: arrivals fire on their own clock whether or not
// earlier requests have finished, so overload is reachable and shedding
// observable (a closed loop self-throttles and can never push a server past
// its knee). A scenario is a sequence of named phases; each phase synthesizes
// or replays its arrivals, launches one goroutine per arrival at its offset,
// and waits for the phase's requests to resolve before the next phase
// starts, so per-phase statistics — client-observed wall-latency
// percentiles, shed rate, per-model throughput — are cleanly attributable to
// that phase's load shape.
//
// Following the expansion-factor tradition of studying a code's behaviour
// across whole workload regimes rather than at one operating point, a
// scenario sweeps the serving stack through regimes (warm-up, burst,
// saturation, recovery) in one run and reports each regime separately.
package scenario

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tbnet/internal/fleet"
	"tbnet/internal/obs"
	"tbnet/internal/tensor"
)

// ErrSpec reports an invalid scenario specification.
var ErrSpec = errors.New("scenario: invalid spec")

// ErrTrace reports an arrival trace that cannot be parsed.
var ErrTrace = errors.New("scenario: bad trace")

// Pattern names one synthesized arrival shape (or the trace replay).
type Pattern string

// The built-in arrival patterns.
const (
	// Uniform fires arrivals at fixed 1/Rate intervals.
	Uniform Pattern = "uniform"
	// Poisson draws exponential interarrival times with mean 1/Rate.
	Poisson Pattern = "poisson"
	// Burst alternates half-periods of PeakRate and Rate arrivals — the
	// flash-crowd shape that stresses admission control.
	Burst Pattern = "burst"
	// Ramp increases the rate linearly from Rate to PeakRate across the
	// phase — the load-ramp shape that locates the serving knee.
	Ramp Pattern = "ramp"
	// Diurnal modulates the rate sinusoidally between Rate and PeakRate
	// with the given Period — a compressed day/night cycle.
	Diurnal Pattern = "diurnal"
	// Replay fires the phase's explicit Trace instead of synthesizing.
	Replay Pattern = "replay"
)

// Arrival is one request of a trace: its offset from the phase start and the
// hosted model it addresses ("" means the target's default model).
type Arrival struct {
	// At is the arrival offset from the start of its phase.
	At time.Duration
	// Model is the hosted model the request addresses ("" = default).
	Model string
}

// ModelShare weights one model of a mixed-model phase.
type ModelShare struct {
	// Name is the hosted model's serving identity.
	Name string
	// Weight is the model's relative share of the phase's arrivals
	// (normalized across the phase; must be positive).
	Weight float64
}

// Phase is one load regime of a scenario.
type Phase struct {
	// Name labels the phase in the report.
	Name string
	// Pattern selects the arrival shape.
	Pattern Pattern
	// Rate is the base arrival rate in requests/second (for Burst and
	// Diurnal it is the trough; ignored by Replay).
	Rate float64
	// PeakRate is the top arrival rate for Burst, Ramp, and Diurnal
	// (default 4×Rate).
	PeakRate float64
	// Period is the Burst/Diurnal cycle length (default: a quarter of the
	// phase for Burst, the whole phase for Diurnal).
	Period time.Duration
	// Duration is the phase's synthesized length (ignored by Replay, which
	// runs to its last trace arrival).
	Duration time.Duration
	// Models weights the phase's traffic across hosted models; empty sends
	// everything to the target's default model. Replay arrivals that name a
	// model keep it; unnamed replay arrivals draw from Models.
	Models []ModelShare
	// Trace is the explicit arrival list for Replay.
	Trace []Arrival
}

// withDefaults fills the derived pattern parameters.
func (p Phase) withDefaults() Phase {
	if p.PeakRate == 0 {
		p.PeakRate = 4 * p.Rate
	}
	if p.Period == 0 {
		switch p.Pattern {
		case Burst:
			p.Period = p.Duration / 4
		case Diurnal:
			p.Period = p.Duration
		}
	}
	return p
}

func (p Phase) validate() error {
	if p.Name == "" {
		return fmt.Errorf("%w: phase with empty name", ErrSpec)
	}
	if p.Pattern == Replay {
		if len(p.Trace) == 0 {
			return fmt.Errorf("%w: replay phase %q has no trace", ErrSpec, p.Name)
		}
		for i, a := range p.Trace {
			if a.At < 0 {
				return fmt.Errorf("%w: replay phase %q arrival %d at %v", ErrSpec, p.Name, i, a.At)
			}
		}
	} else {
		switch p.Pattern {
		case Uniform, Poisson, Burst, Ramp, Diurnal:
		default:
			return fmt.Errorf("%w: phase %q has unknown pattern %q", ErrSpec, p.Name, p.Pattern)
		}
		if p.Rate <= 0 {
			return fmt.Errorf("%w: phase %q rate %g ≤ 0", ErrSpec, p.Name, p.Rate)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("%w: phase %q duration %v ≤ 0", ErrSpec, p.Name, p.Duration)
		}
		if p.PeakRate < 0 || (p.PeakRate > 0 && p.PeakRate < p.Rate) {
			return fmt.Errorf("%w: phase %q peak rate %g below base rate %g",
				ErrSpec, p.Name, p.PeakRate, p.Rate)
		}
	}
	for i, m := range p.Models {
		if m.Name == "" {
			return fmt.Errorf("%w: phase %q model share %d has empty name", ErrSpec, p.Name, i)
		}
		if m.Weight <= 0 {
			return fmt.Errorf("%w: phase %q model %q weight %g ≤ 0", ErrSpec, p.Name, m.Name, m.Weight)
		}
	}
	return nil
}

// Validate checks the phase (with pattern defaults applied) without
// synthesizing arrivals, so a CLI can reject a bad spec before any
// expensive model build. Invalid phases fail with an error wrapping
// ErrSpec.
func (p Phase) Validate() error { return p.withDefaults().validate() }

// rateAt is the instantaneous arrival rate t into the phase.
func (p Phase) rateAt(t time.Duration) float64 {
	switch p.Pattern {
	case Burst:
		if p.Period <= 0 {
			return p.Rate
		}
		// First half of each period is the burst, second half the trough.
		if (t%p.Period)*2 < p.Period {
			return p.PeakRate
		}
		return p.Rate
	case Ramp:
		frac := float64(t) / float64(p.Duration)
		return p.Rate + (p.PeakRate-p.Rate)*frac
	case Diurnal:
		if p.Period <= 0 {
			return p.Rate
		}
		frac := (1 - math.Cos(2*math.Pi*float64(t)/float64(p.Period))) / 2
		return p.Rate + (p.PeakRate-p.Rate)*frac
	default:
		return p.Rate
	}
}

// Arrivals synthesizes (or replays) the phase's arrival list, assigning
// models by the phase's shares. Synthesis is deterministic in seed.
func (p Phase) Arrivals(seed uint64) ([]Arrival, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	pick := modelPicker(p.Models, rng)
	if p.Pattern == Replay {
		out := make([]Arrival, len(p.Trace))
		copy(out, p.Trace)
		sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
		for i := range out {
			if out[i].Model == "" {
				out[i].Model = pick()
			}
		}
		return out, nil
	}
	var out []Arrival
	for t := time.Duration(0); t < p.Duration; {
		rate := p.rateAt(t)
		if rate <= 0 {
			break
		}
		step := 1 / rate
		if p.Pattern == Poisson {
			step = rng.ExpFloat64() / rate
		}
		t += time.Duration(step * float64(time.Second))
		if t >= p.Duration {
			break
		}
		out = append(out, Arrival{At: t, Model: pick()})
	}
	return out, nil
}

// modelPicker returns a weighted model chooser ("" when no shares are
// configured).
func modelPicker(shares []ModelShare, rng *rand.Rand) func() string {
	if len(shares) == 0 {
		return func() string { return "" }
	}
	var total float64
	for _, s := range shares {
		total += s.Weight
	}
	return func() string {
		x := rng.Float64() * total
		for _, s := range shares {
			x -= s.Weight
			if x < 0 {
				return s.Name
			}
		}
		return shares[len(shares)-1].Name
	}
}

// Spec is a full scenario: a named sequence of phases driven from one seed.
type Spec struct {
	// Name labels the scenario in reports and artifacts.
	Name string
	// Seed drives every random decision (Poisson gaps, model mixing).
	Seed uint64
	// Phases run in order, each waiting for its own requests to resolve
	// before the next starts.
	Phases []Phase
}

// Target is the serving surface a scenario drives. fleet.Fleet and
// serve.Server both satisfy it; an empty model name must route to the
// target's default model.
type Target interface {
	// InferModel classifies one sample with the named hosted model.
	InferModel(ctx context.Context, model string, x *tensor.Tensor) (int, error)
}

// defaultModelName resolves "" arrivals to the serving layer's default model
// name.
const defaultModelName = fleet.DefaultModel

// ModelCount is one model's slice of a phase (or scenario) result.
type ModelCount struct {
	// Model is the hosted model's serving identity.
	Model string `json:"model"`
	// Offered is the number of arrivals addressed to this model.
	Offered int `json:"offered"`
	// Served is the number answered successfully.
	Served int `json:"served"`
	// Shed is the number refused by admission control or deadline.
	Shed int `json:"shed"`
	// Failed is the number that errored for any other reason.
	Failed int `json:"failed"`
	// ThroughputRPS is Served divided by the phase's wall duration.
	ThroughputRPS float64 `json:"throughput_rps"`
}

// PhaseResult is one phase's observed outcome.
type PhaseResult struct {
	// Name is the phase's label.
	Name string `json:"name"`
	// Pattern is the arrival shape that drove the phase.
	Pattern string `json:"pattern"`
	// Offered, Served, Shed, Failed count the phase's arrivals by outcome.
	Offered int `json:"offered"`
	// Served is the number of requests answered successfully.
	Served int `json:"served"`
	// Shed is the number refused by admission control or deadline
	// (fleet.ErrOverloaded).
	Shed int `json:"shed"`
	// Failed is the number that errored for any other reason.
	Failed int `json:"failed"`
	// ShedRate is Shed/Offered.
	ShedRate float64 `json:"shed_rate"`
	// OfferedRPS is the phase's realized offered load in requests/second.
	OfferedRPS float64 `json:"offered_rps"`
	// ServedRPS is the phase's delivered throughput in requests/second.
	ServedRPS float64 `json:"served_rps"`
	// DurationSec is the phase's wall-clock length, launch to last response.
	DurationSec float64 `json:"duration_sec"`
	// P50Ms, P95Ms, P99Ms are client-observed wall-latency percentiles of
	// the served requests, in milliseconds. Unlike the serving layer's
	// modeled device latencies, these include queueing, batching delay, and
	// host scheduling — the end-to-end figure a client of the system sees.
	P50Ms float64 `json:"p50_ms"`
	// P95Ms is the phase's client-observed p95 latency in milliseconds.
	P95Ms float64 `json:"p95_ms"`
	// P99Ms is the phase's client-observed p99 latency in milliseconds.
	P99Ms float64 `json:"p99_ms"`
	// PerModel breaks the phase down by addressed model, in first-seen
	// order.
	PerModel []ModelCount `json:"per_model"`
}

// Result is a completed scenario run.
type Result struct {
	// Name is the scenario's label.
	Name string `json:"name"`
	// Seed is the seed the run was driven from.
	Seed uint64 `json:"seed"`
	// Offered, Served, Shed, Failed are the scenario-wide totals.
	Offered int `json:"offered"`
	// Served is the total number of requests answered successfully.
	Served int `json:"served"`
	// Shed is the total number refused by admission control or deadline.
	Shed int `json:"shed"`
	// Failed is the total number that errored for any other reason.
	Failed int `json:"failed"`
	// WallSeconds is the whole run's wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// Phases are the per-phase outcomes, in execution order.
	Phases []PhaseResult `json:"phases"`
	// PerModel are the scenario-wide per-model totals, in first-seen order.
	PerModel []ModelCount `json:"per_model"`
}

// outcome classifies one resolved request.
type outcome struct {
	model   string
	latency time.Duration
	shed    bool
	failed  bool
}

// Run drives tgt through every phase of spec. sample provides the i-th
// request's input tensor (i counts across the whole scenario, so a provider
// can cycle a dataset); it must be safe for concurrent use — arrivals fire
// from their own goroutines. Run stops early (returning the phases completed
// so far inside an error) only if ctx is cancelled; per-request errors are
// data, not failures.
func Run(ctx context.Context, tgt Target, spec Spec, sample func(i int) *tensor.Tensor) (*Result, error) {
	if tgt == nil {
		return nil, fmt.Errorf("%w: nil target", ErrSpec)
	}
	if sample == nil {
		return nil, fmt.Errorf("%w: nil sample provider", ErrSpec)
	}
	if len(spec.Phases) == 0 {
		return nil, fmt.Errorf("%w: no phases", ErrSpec)
	}
	// Validate everything up front so a typo in phase 4 does not burn the
	// first three phases' wall time.
	for _, ph := range spec.Phases {
		if err := ph.withDefaults().validate(); err != nil {
			return nil, err
		}
	}
	res := &Result{Name: spec.Name, Seed: spec.Seed}
	start := time.Now()
	reqIndex := 0
	totals := newModelTally()
	for pi, ph := range spec.Phases {
		arrivals, err := ph.Arrivals(spec.Seed + uint64(pi)*1009)
		if err != nil {
			return nil, err
		}
		pr, err := runPhase(ctx, tgt, ph, arrivals, sample, &reqIndex)
		if err != nil {
			res.WallSeconds = time.Since(start).Seconds()
			return res, err
		}
		res.Phases = append(res.Phases, *pr)
		res.Offered += pr.Offered
		res.Served += pr.Served
		res.Shed += pr.Shed
		res.Failed += pr.Failed
		for _, mc := range pr.PerModel {
			totals.add(mc.Model, mc)
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.PerModel = totals.list(res.WallSeconds)
	return res, nil
}

// runPhase fires one phase's arrivals open-loop and waits for them all.
func runPhase(ctx context.Context, tgt Target, ph Phase, arrivals []Arrival,
	sample func(i int) *tensor.Tensor, reqIndex *int) (*PhaseResult, error) {
	outcomes := make([]outcome, len(arrivals))
	var wg sync.WaitGroup
	phaseStart := time.Now()
	for i, a := range arrivals {
		if err := sleepUntil(ctx, phaseStart.Add(a.At)); err != nil {
			// Cancelled mid-phase: wait for what was already launched, then
			// surface the cancellation.
			wg.Wait()
			return nil, err
		}
		idx := *reqIndex
		*reqIndex++
		wg.Add(1)
		go func(i int, a Arrival, x *tensor.Tensor) {
			defer wg.Done()
			model := a.Model
			if model == "" {
				model = defaultModelName
			}
			t0 := time.Now()
			_, err := tgt.InferModel(ctx, model, x)
			o := outcome{model: model, latency: time.Since(t0)}
			switch {
			case err == nil:
			case errors.Is(err, fleet.ErrOverloaded):
				o.shed = true
			default:
				o.failed = true
			}
			outcomes[i] = o
		}(i, a, sample(idx))
	}
	wg.Wait()
	elapsed := time.Since(phaseStart)
	return summarize(ph, arrivals, outcomes, elapsed), nil
}

// sleepUntil waits for the wall-clock deadline, honouring cancellation.
func sleepUntil(ctx context.Context, when time.Time) error {
	d := time.Until(when)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// summarize folds a phase's outcomes into its result row.
func summarize(ph Phase, arrivals []Arrival, outcomes []outcome, elapsed time.Duration) *PhaseResult {
	pr := &PhaseResult{
		Name:        ph.Name,
		Pattern:     string(ph.Pattern),
		Offered:     len(arrivals),
		DurationSec: elapsed.Seconds(),
	}
	tally := newModelTally()
	var served []float64
	for _, o := range outcomes {
		mc := ModelCount{Model: o.model, Offered: 1}
		switch {
		case o.shed:
			pr.Shed++
			mc.Shed = 1
		case o.failed:
			pr.Failed++
			mc.Failed = 1
		default:
			pr.Served++
			mc.Served = 1
			served = append(served, o.latency.Seconds())
		}
		tally.add(o.model, mc)
	}
	if pr.Offered > 0 {
		pr.ShedRate = float64(pr.Shed) / float64(pr.Offered)
	}
	if pr.DurationSec > 0 {
		pr.OfferedRPS = float64(pr.Offered) / pr.DurationSec
		pr.ServedRPS = float64(pr.Served) / pr.DurationSec
	}
	if len(served) > 0 {
		sort.Float64s(served)
		pr.P50Ms = obs.NearestRank(served, 0.50) * 1e3
		pr.P95Ms = obs.NearestRank(served, 0.95) * 1e3
		pr.P99Ms = obs.NearestRank(served, 0.99) * 1e3
	}
	pr.PerModel = tally.list(pr.DurationSec)
	return pr
}

// modelTally accumulates per-model counts preserving first-seen order.
type modelTally struct {
	order  []string
	counts map[string]*ModelCount
}

func newModelTally() *modelTally {
	return &modelTally{counts: make(map[string]*ModelCount)}
}

func (t *modelTally) add(model string, mc ModelCount) {
	c := t.counts[model]
	if c == nil {
		c = &ModelCount{Model: model}
		t.counts[model] = c
		t.order = append(t.order, model)
	}
	c.Offered += mc.Offered
	c.Served += mc.Served
	c.Shed += mc.Shed
	c.Failed += mc.Failed
}

func (t *modelTally) list(durationSec float64) []ModelCount {
	out := make([]ModelCount, 0, len(t.order))
	for _, m := range t.order {
		c := *t.counts[m]
		if durationSec > 0 {
			c.ThroughputRPS = float64(c.Served) / durationSec
		}
		out = append(out, c)
	}
	return out
}

// ParseTrace reads an arrival trace: one arrival per line as
//
//	<offset-seconds> [model]
//
// with '#' comments and blank lines ignored. Offsets are seconds from the
// trace start (fractions allowed) and need not be sorted; the parsed trace
// is returned in time order.
func ParseTrace(r io.Reader) ([]Arrival, error) {
	sc := bufio.NewScanner(r)
	var out []Arrival
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) > 2 {
			return nil, fmt.Errorf("%w: line %d: want \"<offset-seconds> [model]\", got %q",
				ErrTrace, line, text)
		}
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || secs < 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
			return nil, fmt.Errorf("%w: line %d: bad offset %q", ErrTrace, line, fields[0])
		}
		a := Arrival{At: time.Duration(secs * float64(time.Second))}
		if len(fields) == 2 {
			a.Model = fields[1]
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTrace, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrTrace)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}
