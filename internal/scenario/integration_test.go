package scenario

import (
	"context"
	"testing"
	"time"

	"tbnet/internal/core"
	"tbnet/internal/fleet"
	"tbnet/internal/tee"
	"tbnet/internal/tensor"
	"tbnet/internal/zoo"
)

// TestScenarioDrivesRealFleet: the harness against a live two-model fleet —
// per-phase rows populate, per-model traffic reaches both models, and a
// tight deadline under a hard burst produces shed classified as shed.
func TestScenarioDrivesRealFleet(t *testing.T) {
	build := func(seed uint64) *core.Deployment {
		victim := zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(seed))
		tb := core.NewTwoBranch(victim, seed+1)
		tb.Finalized = true
		dep, err := core.Deploy(tb, tee.RaspberryPi3(), []int{1, 3, 16, 16})
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	// Shedding must be provoked deterministically: a tiny in-flight cap
	// sheds by arithmetic once the burst overlaps more than 4 requests,
	// where a wall-clock deadline would depend on how fast the host happens
	// to be running this test.
	f, err := fleet.New(build(1), fleet.Config{
		Nodes:       []fleet.NodeConfig{{Device: tee.RaspberryPi3(), Workers: 1}},
		Models:      []fleet.NamedModel{{Name: "b", Dep: build(2)}},
		MaxInFlight: 4,
		MaxDelay:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	xs := make([]*tensor.Tensor, 32)
	rng := tensor.NewRNG(9)
	for i := range xs {
		xs[i] = tensor.New(1, 3, 16, 16)
		rng.FillNormal(xs[i], 0, 1)
	}
	spec := Spec{
		Name: "integration",
		Seed: 1,
		Phases: []Phase{
			{Name: "calm", Pattern: Uniform, Rate: 100, Duration: 200 * time.Millisecond,
				Models: []ModelShare{{Name: fleet.DefaultModel, Weight: 1}, {Name: "b", Weight: 1}}},
			{Name: "crush", Pattern: Burst, Rate: 100, PeakRate: 4000,
				Period: 200 * time.Millisecond, Duration: 400 * time.Millisecond},
		},
	}
	res, err := Run(context.Background(), f, spec, func(i int) *tensor.Tensor { return xs[i%len(xs)] })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 || res.Offered == 0 {
		t.Fatalf("result = %+v", res)
	}
	calm := res.Phases[0]
	if calm.Served == 0 || calm.P50Ms <= 0 {
		t.Fatalf("calm phase served nothing: %+v", calm)
	}
	var sawB bool
	for _, mc := range calm.PerModel {
		if mc.Model == "b" && mc.Offered > 0 {
			sawB = true
		}
	}
	if !sawB {
		t.Fatalf("mixed phase never addressed model b: %+v", calm.PerModel)
	}
	crush := res.Phases[1]
	if crush.Shed == 0 {
		t.Fatalf("4000 req/s burst against a 4-request in-flight cap shed nothing: %+v", crush)
	}
	if crush.Failed != 0 {
		t.Fatalf("burst produced %d hard failures (shed misclassified?)", crush.Failed)
	}
	st := f.Stats()
	if st.Shed == 0 {
		t.Fatal("fleet counters saw no shed despite scenario shed")
	}
}
