package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"tbnet/internal/fleet"
	"tbnet/internal/serve"
	"tbnet/internal/tensor"
)

// HTTPTarget drives a remote tbnetd daemon through its real socket path: it
// implements Target by POSTing each sample to /v1/infer, so a phased
// workload exercises the daemon's full stack — HTTP parsing, the middleware
// chain, JSON marshalling, fleet routing — not just the in-process fleet.
// Overload answers (429/503) classify as shed, 504 as deadline expiry, and
// 404 as an unknown model, so Result's outcome split reads the same whether
// the target is a local Fleet or a daemon across the network.
type HTTPTarget struct {
	base   *url.URL
	client *http.Client
	apiKey string
}

// HTTPTargetOption configures an HTTPTarget.
type HTTPTargetOption func(*HTTPTarget)

// WithHTTPClient replaces the target's HTTP client (default: a dedicated
// client with a 30s request timeout).
func WithHTTPClient(c *http.Client) HTTPTargetOption {
	return func(t *HTTPTarget) { t.client = c }
}

// WithAPIKey attaches an API key (sent as X-API-Key) to every request, for
// daemons running with authentication enabled.
func WithAPIKey(key string) HTTPTargetOption {
	return func(t *HTTPTarget) { t.apiKey = key }
}

// NewHTTPTarget validates rawURL and returns a target addressing the tbnetd
// daemon at its base. The URL must be absolute with an http or https scheme
// and a host; anything else fails immediately with ErrSpec — a load test
// must refuse a bad target before any traffic is generated (and, in the CLI,
// before any model is built).
func NewHTTPTarget(rawURL string, opts ...HTTPTargetOption) (*HTTPTarget, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("%w: target URL %q: %v", ErrSpec, rawURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("%w: target URL %q: scheme %q (want http or https)", ErrSpec, rawURL, u.Scheme)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("%w: target URL %q: missing host", ErrSpec, rawURL)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	u.RawQuery, u.Fragment = "", ""
	t := &HTTPTarget{
		base:   u,
		client: &http.Client{Timeout: 30 * time.Second},
	}
	for _, opt := range opts {
		opt(t)
	}
	return t, nil
}

// endpoint resolves a daemon path against the target's base URL.
func (t *HTTPTarget) endpoint(path string) string {
	return t.base.String() + path
}

// wireInfer mirrors the daemon's POST /v1/infer body.
type wireInfer struct {
	Model string    `json:"model,omitempty"`
	Input []float64 `json:"input"`
	Shape []int     `json:"shape,omitempty"`
}

// wireLabel mirrors the daemon's inference answer.
type wireLabel struct {
	Label int `json:"label"`
}

// wireErr mirrors the daemon's JSON error body.
type wireErr struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// InferModel classifies one sample by POSTing it to the daemon's /v1/infer.
func (t *HTTPTarget) InferModel(ctx context.Context, model string, x *tensor.Tensor) (int, error) {
	shape := x.Shape()
	if len(shape) == 4 {
		shape = shape[1:]
	}
	data := x.Data()
	input := make([]float64, len(data))
	for i, v := range data {
		input[i] = float64(v)
	}
	body, err := json.Marshal(wireInfer{Model: model, Input: input, Shape: shape})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.endpoint("/v1/infer"), bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if t.apiKey != "" {
		req.Header.Set("X-API-Key", t.apiKey)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out wireLabel
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return 0, fmt.Errorf("scenario: decoding /v1/infer answer: %w", err)
		}
		return out.Label, nil
	}
	var we wireErr
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&we)
	msg := we.Error
	if msg == "" {
		msg = resp.Status
	}
	// Map wire statuses back onto the serving stack's sentinels so the
	// harness's outcome classification is target-agnostic.
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return 0, fmt.Errorf("scenario: %s: %w", msg, fleet.ErrOverloaded)
	case http.StatusGatewayTimeout:
		return 0, fmt.Errorf("scenario: %s: %w", msg, context.DeadlineExceeded)
	case http.StatusNotFound:
		return 0, fmt.Errorf("scenario: %s: %w", msg, serve.ErrUnknownModel)
	default:
		return 0, fmt.Errorf("scenario: /v1/infer answered %d: %s", resp.StatusCode, msg)
	}
}

// RemoteModel is one hosted model as reported by the daemon's /v1/models.
type RemoteModel struct {
	// Name is the model's serving identity.
	Name string `json:"name"`
	// Default marks the daemon's default model.
	Default bool `json:"default"`
	// SampleShape is the [N,C,H,W] shape the pool was planned for — what a
	// client needs to synthesize valid load.
	SampleShape []int `json:"sample_shape"`
}

// Models asks the daemon which models it hosts (GET /v1/models), so a
// client-mode scenario can split traffic across them and size its synthetic
// samples without any local artifact.
func (t *HTTPTarget) Models(ctx context.Context) ([]RemoteModel, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.endpoint("/v1/models"), nil)
	if err != nil {
		return nil, err
	}
	if t.apiKey != "" {
		req.Header.Set("X-API-Key", t.apiKey)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scenario: /v1/models answered %s", resp.Status)
	}
	var out struct {
		Models []RemoteModel `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("scenario: decoding /v1/models: %w", err)
	}
	if len(out.Models) == 0 {
		return nil, fmt.Errorf("scenario: daemon hosts no models")
	}
	return out.Models, nil
}
