package zoo

import (
	"math"
	"testing"

	"tbnet/internal/nn"
	"tbnet/internal/tensor"
)

func randImages(n, c, h, w int, seed uint64) *tensor.Tensor {
	x := tensor.New(n, c, h, w)
	tensor.NewRNG(seed).FillNormal(x, 0, 1)
	return x
}

func TestVGGForwardShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := BuildVGG(VGG18Config(10), rng)
	out := m.Forward(randImages(2, 3, 16, 16, 99), false)
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("logits shape = %v, want [2 10]", out.Shape())
	}
}

func TestVGGStageShapes(t *testing.T) {
	rng := tensor.NewRNG(2)
	m := BuildVGG(VGG18Config(10), rng)
	shapes := m.StageShapes([]int{1, 3, 16, 16})
	// 8 stages + head output.
	if len(shapes) != 9 {
		t.Fatalf("got %d shapes, want 9", len(shapes))
	}
	// Pools after stages 1,3,5,7: spatial 16→8→4→2→1 (pool at stage ends).
	last := shapes[7]
	if last[2] != 1 || last[3] != 1 {
		t.Fatalf("final feature map %v, want 1×1 spatial", last)
	}
	logits := shapes[8]
	if logits[1] != 10 {
		t.Fatalf("head output %v, want 10 classes", logits)
	}
}

func TestResNetForwardShape(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := BuildResNet(ResNet20Config(10), true, rng)
	if len(m.Stages) != 10 { // stem + 9 blocks
		t.Fatalf("resnet20 has %d stages, want 10", len(m.Stages))
	}
	out := m.Forward(randImages(2, 3, 16, 16, 99), false)
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("logits shape = %v, want [2 10]", out.Shape())
	}
}

func TestResNetPlainVariantSameShapes(t *testing.T) {
	rng := tensor.NewRNG(4)
	withSkip := BuildResNet(TinyResNetConfig(10), true, rng)
	plain := StripSkips(withSkip)
	in := []int{1, 3, 16, 16}
	a := withSkip.StageShapes(in)
	b := plain.StageShapes(in)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("stage %d shapes differ: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestStripSkipsRemovesSkipParams(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := BuildResNet(ResNet20Config(10), true, rng)
	plain := StripSkips(m)
	for _, s := range plain.Stages {
		if rb, ok := s.(*ResBlock); ok {
			if rb.WithSkip || rb.Down != nil {
				t.Fatalf("block %s still has a skip after StripSkips", rb.Name())
			}
		}
	}
	if len(plain.Params()) >= len(m.Params()) {
		t.Fatal("plain variant should have fewer parameters (no projection convs)")
	}
}

func TestModelCloneIndependent(t *testing.T) {
	rng := tensor.NewRNG(6)
	m := BuildVGG(TinyVGGConfig(10), rng)
	cl := m.Clone()
	x := randImages(2, 3, 16, 16, 7)
	a := m.Forward(x.Clone(), false)
	b := cl.Forward(x.Clone(), false)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("clone forward differs from original")
		}
	}
	// Mutating the clone must not affect the original.
	cl.Stages[0].(*ConvBlock).Conv.W.Value.Fill(0)
	c := m.Forward(x.Clone(), false)
	for i := range a.Data() {
		if a.Data()[i] != c.Data()[i] {
			t.Fatal("clone mutation leaked into the original")
		}
	}
}

func TestVGGGroups(t *testing.T) {
	rng := tensor.NewRNG(8)
	m := BuildVGG(VGG18Config(10), rng)
	groups := m.Groups()
	if len(groups) != 8 {
		t.Fatalf("VGG has %d prunable groups, want 8", len(groups))
	}
	for _, g := range groups {
		if g.Kind != GroupOutput {
			t.Fatalf("VGG group %v should be an output group", g)
		}
		if m.GroupSize(g) != m.Stages[g.Stage].OutChannels() {
			t.Fatalf("group %v size mismatch", g)
		}
	}
}

func TestResNetGroups(t *testing.T) {
	rng := tensor.NewRNG(9)
	m := BuildResNet(ResNet20Config(10), true, rng)
	groups := m.Groups()
	if len(groups) != 9 { // one internal group per block; stem is fixed
		t.Fatalf("ResNet20 has %d prunable groups, want 9", len(groups))
	}
	for _, g := range groups {
		if g.Kind != GroupInternal {
			t.Fatalf("ResNet group %v should be internal", g)
		}
	}
}

// TestApplyKeepPreservesFunctionOnKeptChannels: zeroing a channel's γ and β
// then pruning it must leave the network function unchanged.
func TestApplyKeepPreservesFunction(t *testing.T) {
	rng := tensor.NewRNG(10)
	m := BuildVGG(TinyVGGConfig(10), rng)
	x := randImages(2, 3, 16, 16, 11)
	g := m.Groups()[1] // middle stage
	// Kill channel 3 of that stage: zero γ and β so its output is identically 0.
	blk := m.Stages[g.Stage].(*ConvBlock)
	blk.BN.Gamma.Value.Data()[3] = 0
	blk.BN.Beta.Value.Data()[3] = 0
	before := m.Forward(x.Clone(), false)

	keep := []int{0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11}
	m.ApplyKeep(g, keep)
	after := m.Forward(x.Clone(), false)
	for i := range before.Data() {
		if math.Abs(float64(before.Data()[i]-after.Data()[i])) > 1e-4 {
			t.Fatalf("pruning a dead channel changed the output: %v vs %v",
				before.Data()[i], after.Data()[i])
		}
	}
	if blk.OutChannels() != 11 {
		t.Fatalf("stage width = %d after prune, want 11", blk.OutChannels())
	}
}

// TestResNetInternalPrunePreservesFunction: same property for a residual
// block's internal channels.
func TestResNetInternalPrunePreservesFunction(t *testing.T) {
	rng := tensor.NewRNG(12)
	m := BuildResNet(TinyResNetConfig(10), true, rng)
	x := randImages(2, 3, 16, 16, 13)
	g := m.Groups()[0]
	rb := m.Stages[g.Stage].(*ResBlock)
	rb.BN1.Gamma.Value.Data()[0] = 0
	rb.BN1.Beta.Value.Data()[0] = 0
	before := m.Forward(x.Clone(), false)

	var keep []int
	for i := 1; i < rb.InternalChannels(); i++ {
		keep = append(keep, i)
	}
	m.ApplyKeep(g, keep)
	after := m.Forward(x.Clone(), false)
	for i := range before.Data() {
		if math.Abs(float64(before.Data()[i]-after.Data()[i])) > 1e-4 {
			t.Fatal("internal pruning of a dead channel changed the output")
		}
	}
}

func TestLastStagePruneAdjustsHead(t *testing.T) {
	rng := tensor.NewRNG(14)
	m := BuildVGG(TinyVGGConfig(10), rng)
	last := m.Groups()[len(m.Groups())-1]
	if last.Stage != len(m.Stages)-1 {
		t.Fatalf("last group stage = %d", last.Stage)
	}
	keep := []int{0, 2, 4, 6, 8, 10}
	m.ApplyKeep(last, keep)
	if m.Head.FC.In != len(keep) {
		t.Fatalf("head input = %d after prune, want %d", m.Head.FC.In, len(keep))
	}
	out := m.Forward(randImages(1, 3, 16, 16, 15), false)
	if out.Dim(1) != 10 {
		t.Fatalf("logits shape %v after prune", out.Shape())
	}
}

// TestModelTrainsOnToyTask: a few SGD steps must reduce the loss — an
// end-to-end sanity check of the whole stack.
func TestModelTrainsOnToyTask(t *testing.T) {
	rng := tensor.NewRNG(16)
	m := BuildVGG(TinyVGGConfig(2), rng)
	x := randImages(16, 3, 16, 16, 17)
	// Labels derived from a simple pixel statistic so they are learnable.
	labels := make([]int, 16)
	sample := x.Size() / 16
	for i := range labels {
		var s float32
		for p := 0; p < sample; p++ {
			s += x.Data()[i*sample+p]
		}
		if s > 0 {
			labels[i] = 1
		}
	}
	var first, last float64
	for step := 0; step < 30; step++ {
		logits := m.Forward(x, true)
		loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
		m.Backward(grad)
		for _, p := range m.Params() {
			p.Value.AddScaled(-0.05, p.Grad)
		}
	}
	if last >= first*0.9 {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

func TestResNetBackwardThroughSkip(t *testing.T) {
	rng := tensor.NewRNG(18)
	m := BuildResNet(TinyResNetConfig(2), true, rng)
	x := randImages(4, 3, 16, 16, 19)
	labels := []int{0, 1, 0, 1}
	logits := m.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy(logits, labels)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	dx := m.Backward(grad)
	if dx.Size() != x.Size() {
		t.Fatalf("input gradient size %d, want %d", dx.Size(), x.Size())
	}
	// Every parameter should receive some gradient.
	for _, p := range m.Params() {
		if p.Grad.AbsSum() == 0 {
			t.Fatalf("parameter %s received zero gradient", p.Name)
		}
	}
}
