package zoo

import (
	"math"
	"testing"

	"tbnet/internal/tensor"
)

func TestMobileNetForwardShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := BuildMobileNet(MobileNetSConfig(10), rng)
	if m.Arch != "mobilenet" || len(m.Stages) != 7 { // stem + 6 blocks
		t.Fatalf("arch %s, %d stages", m.Arch, len(m.Stages))
	}
	out := m.Forward(randImages(2, 3, 16, 16, 2), false)
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("logits = %v", out.Shape())
	}
}

func TestMobileNetGroups(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := BuildMobileNet(MobileNetSConfig(10), rng)
	groups := m.Groups()
	// Stem output + every DW block output are prunable.
	if len(groups) != 7 {
		t.Fatalf("groups = %d, want 7", len(groups))
	}
	for _, g := range groups {
		if g.Kind != GroupOutput {
			t.Fatalf("group %v should be output kind", g)
		}
	}
}

func TestDWBlockPrunePreservesFunction(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := BuildMobileNet(TinyMobileNetConfig(5), rng)
	x := randImages(2, 3, 16, 16, 5)
	g := m.Groups()[1] // first DW block
	blk := m.Stages[g.Stage].(*DWBlock)
	blk.BN2.Gamma.Value.Data()[2] = 0
	blk.BN2.Beta.Value.Data()[2] = 0
	before := m.Forward(x.Clone(), false)

	var keep []int
	for i := 0; i < blk.OutChannels(); i++ {
		if i != 2 {
			keep = append(keep, i)
		}
	}
	m.ApplyKeep(g, keep)
	after := m.Forward(x.Clone(), false)
	for i := range before.Data() {
		if math.Abs(float64(before.Data()[i]-after.Data()[i])) > 1e-4 {
			t.Fatal("pruning a dead DW-block channel changed the output")
		}
	}
}

func TestDWBlockPruneInputSide(t *testing.T) {
	rng := tensor.NewRNG(6)
	m := BuildMobileNet(TinyMobileNetConfig(5), rng)
	// Prune the stem's output: the following DW block's input side must track.
	g := m.Groups()[0]
	keep := []int{0, 2, 4, 6}
	m.ApplyKeep(g, keep)
	blk := m.Stages[1].(*DWBlock)
	if blk.InChannels() != 4 || blk.DW.C != 4 || blk.PW.InC != 4 {
		t.Fatalf("input side not pruned: in=%d dw=%d pw=%d",
			blk.InChannels(), blk.DW.C, blk.PW.InC)
	}
	out := m.Forward(randImages(1, 3, 16, 16, 7), false)
	if out.Dim(1) != 5 {
		t.Fatalf("logits = %v", out.Shape())
	}
}

func TestMobileNetCloneAndReinit(t *testing.T) {
	rng := tensor.NewRNG(8)
	m := BuildMobileNet(TinyMobileNetConfig(5), rng)
	cl := m.Clone()
	x := randImages(1, 3, 16, 16, 9)
	a := m.Forward(x.Clone(), false)
	b := cl.Forward(x.Clone(), false)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("clone diverges")
		}
	}
	cl.Reinitialize(tensor.NewRNG(10))
	c := cl.Forward(x.Clone(), false)
	same := true
	for i := range a.Data() {
		if a.Data()[i] != c.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("reinitialize did not change the function")
	}
}
