package zoo

import (
	"testing"

	"tbnet/internal/nn"
	"tbnet/internal/tensor"
)

// warmStats pushes one training batch through a model so batch norms carry
// non-trivial running statistics (otherwise the eval path degenerates).
func warmStats(m *Model, seed uint64) {
	x := tensor.New(4, m.InC, 16, 16)
	tensor.NewRNG(seed).FillNormal(x, 0, 1)
	m.Forward(x, true)
}

// TestStageInferIntoMatchesForward locks the stage-level equivalence the
// deployment plan depends on: for every stage type, InferInto must be
// bit-identical to the eval-mode Forward chain.
func TestStageInferIntoMatchesForward(t *testing.T) {
	rng := tensor.NewRNG(7)
	models := map[string]*Model{
		"vgg":       BuildVGG(TinyVGGConfig(4), rng),
		"resnet":    BuildResNet(TinyResNetConfig(4), true, rng),
		"mobilenet": BuildMobileNet(TinyMobileNetConfig(4), rng),
	}
	for name, m := range models {
		warmStats(m, 11)
		a := nn.NewArena()
		for _, batch := range []int{1, 3} {
			x := tensor.New(batch, m.InC, 16, 16)
			tensor.NewRNG(uint64(13+batch)).FillNormal(x, 0, 1)
			cur := x
			for si, s := range m.Stages {
				want := s.Forward(cur, false)
				dst := tensor.New(s.OutShape(cur.Shape())...)
				dst.Fill(42)
				s.InferInto(dst, cur, a)
				diffCheck(t, name, s.Name(), want, dst)
				// Run again through the warm arena: steady state must agree too.
				s.InferInto(dst, cur, a)
				diffCheck(t, name, s.Name(), want, dst)
				cur = want
				_ = si
			}
			want := m.Head.Forward(cur, false)
			dst := tensor.New(m.Head.OutShape(cur.Shape())...)
			m.Head.InferInto(dst, cur, a)
			diffCheck(t, name, m.Head.Name(), want, dst)
		}
	}
}

func diffCheck(t *testing.T, model, layer string, want, got *tensor.Tensor) {
	t.Helper()
	if !want.SameShape(got) {
		t.Fatalf("%s/%s: shape %v vs %v", model, layer, got.Shape(), want.Shape())
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("%s/%s: element %d = %v via InferInto, %v via Forward", model, layer, i, gd[i], wd[i])
		}
	}
}

// TestResBlockSkipVariantsInferInto covers the three skip configurations
// (projection, identity, stripped) explicitly.
func TestResBlockSkipVariantsInferInto(t *testing.T) {
	rng := tensor.NewRNG(21)
	blocks := []*ResBlock{
		NewResBlock("proj", 6, 8, 2, true, rng),  // projection skip
		NewResBlock("ident", 6, 6, 1, true, rng), // identity skip
		NewResBlock("plain", 6, 8, 1, false, rng),
	}
	for _, b := range blocks {
		x := tensor.New(2, 6, 8, 8)
		tensor.NewRNG(23).FillNormal(x, 0, 1)
		b.Forward(x, true) // warm BN stats
		want := b.Forward(x, false)
		dst := tensor.New(b.OutShape(x.Shape())...)
		b.InferInto(dst, x, nn.NewArena())
		diffCheck(t, "resblock", b.Name(), want, dst)
	}
}
