// Package zoo builds the DNN architectures the paper evaluates — a VGG-style
// plain convolutional network and ResNet-20 — as *staged* models. A stage is
// the granularity at which TBNet transfers feature maps from the unsecured
// branch (REE) into the secure branch (TEE), and the unit the pruning
// machinery reasons about. Width scales are reduced relative to the paper so
// the full pipeline (train → transfer → prune → attack) runs on CPU in CI
// time; the architectural families and pruning surfaces are unchanged.
package zoo

import (
	"fmt"

	"tbnet/internal/nn"
	"tbnet/internal/tensor"
)

// Stage is one feature-map-producing unit of a staged model. After each
// stage, TBNet's two-branch model transfers the REE feature map into the TEE.
type Stage interface {
	nn.Layer
	// OutChannels is the stage's current output channel count.
	OutChannels() int
	// InChannels is the stage's current input channel count.
	InChannels() int
	// OutPrunable reports whether the stage's output channels may be pruned
	// (false when identity skip connections tie the channel dimension).
	OutPrunable() bool
	// OutGamma returns the BN scale vector ranking the stage's output
	// channels (nil if the stage output has no batch norm).
	OutGamma() *nn.Param
	// PruneOut keeps only the listed output channels.
	PruneOut(keep []int)
	// PruneIn keeps only the listed input channels.
	PruneIn(keep []int)
	// CloneStage deep-copies the stage.
	CloneStage() Stage
	// InferInto is the stage's preplanned inference path: the eval-mode
	// forward written into dst (shaped per OutShape) with every
	// intermediate drawn from the arena. No backward state is retained.
	InferInto(dst, x *tensor.Tensor, a *nn.Arena)
}

// ConvBlock is Conv → BN → ReLU with an optional trailing max pool: the
// building unit of the VGG-style models and the ResNet stem.
type ConvBlock struct {
	Conv *nn.Conv2D
	BN   *nn.BatchNorm2D
	Act  *nn.ReLU
	Pool *nn.MaxPool2D // nil when the block does not downsample
	// OutFixed pins the output channels (set on the ResNet stem, whose width
	// is tied to the identity skips of the first residual stage).
	OutFixed bool
	name     string
}

// NewConvBlock builds a conv block; pool > 1 appends a max pool of that size.
func NewConvBlock(name string, inC, outC, stride, pool int, rng *tensor.RNG) *ConvBlock {
	b := &ConvBlock{
		Conv: nn.NewConv2D(name+".conv", inC, outC, 3, stride, 1, false, rng),
		BN:   nn.NewBatchNorm2D(name+".bn", outC),
		Act:  nn.NewReLU(name + ".relu"),
		name: name,
	}
	if pool > 1 {
		b.Pool = nn.NewMaxPool2D(name+".pool", pool)
	}
	return b
}

// Name returns the stage's diagnostic name.
func (b *ConvBlock) Name() string { return b.name }

// Params returns conv + BN parameters.
func (b *ConvBlock) Params() []*nn.Param {
	return append(b.Conv.Params(), b.BN.Params()...)
}

// OutShape composes the block's layers.
func (b *ConvBlock) OutShape(in []int) []int {
	s := b.BN.OutShape(b.Conv.OutShape(in))
	if b.Pool != nil {
		s = b.Pool.OutShape(s)
	}
	return s
}

// Forward runs conv → bn → relu (→ pool).
func (b *ConvBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := b.Act.Forward(b.BN.Forward(b.Conv.Forward(x, train), train), train)
	if b.Pool != nil {
		y = b.Pool.Forward(y, train)
	}
	return y
}

// Backward reverses Forward.
func (b *ConvBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.Pool != nil {
		grad = b.Pool.Backward(grad)
	}
	return b.Conv.Backward(b.BN.Backward(b.Act.Backward(grad)))
}

// InferInto implements the stage inference path: conv into the destination
// (or an arena buffer when the block pools), then batch norm and ReLU in
// place, then the optional pool into dst.
func (b *ConvBlock) InferInto(dst, x *tensor.Tensor, a *nn.Arena) {
	if b.Pool == nil {
		b.Conv.ForwardInto(dst, x, a)
		b.BN.ForwardInto(dst, dst, a)
		b.Act.ForwardInto(dst, dst, a)
		return
	}
	n := x.Dim(0)
	oh := tensor.ConvOutDim(x.Dim(2), b.Conv.KH, b.Conv.Stride, b.Conv.Pad)
	ow := tensor.ConvOutDim(x.Dim(3), b.Conv.KW, b.Conv.Stride, b.Conv.Pad)
	mid := a.Tensor4(b.name, n, b.Conv.OutC, oh, ow)
	b.Conv.ForwardInto(mid, x, a)
	b.BN.ForwardInto(mid, mid, a)
	b.Act.ForwardInto(mid, mid, a)
	b.Pool.ForwardInto(dst, mid, a)
}

// OutChannels returns the conv's output width.
func (b *ConvBlock) OutChannels() int { return b.Conv.OutC }

// InChannels returns the conv's input width.
func (b *ConvBlock) InChannels() int { return b.Conv.InC }

// OutPrunable reports whether output pruning is allowed.
func (b *ConvBlock) OutPrunable() bool { return !b.OutFixed }

// OutGamma returns the BN scale ranking the output channels.
func (b *ConvBlock) OutGamma() *nn.Param { return b.BN.Gamma }

// PruneOut keeps only the listed output channels.
func (b *ConvBlock) PruneOut(keep []int) {
	b.Conv.PruneOutput(keep)
	b.BN.Prune(keep)
}

// PruneIn keeps only the listed input channels.
func (b *ConvBlock) PruneIn(keep []int) { b.Conv.PruneInput(keep) }

// CloneStage deep-copies the block.
func (b *ConvBlock) CloneStage() Stage {
	out := &ConvBlock{
		Conv:     nn.CloneOf(b.Conv).(*nn.Conv2D),
		BN:       nn.CloneOf(b.BN).(*nn.BatchNorm2D),
		Act:      nn.NewReLU(b.name + ".relu"),
		OutFixed: b.OutFixed,
		name:     b.name,
	}
	if b.Pool != nil {
		out.Pool = nn.NewMaxPool2D(b.name+".pool", b.Pool.K)
	}
	return out
}

// ResBlock is a ResNet basic block: two 3×3 convolutions with an identity or
// 1×1-projection skip. WithSkip=false yields the plain "main branch" variant
// the paper uses to initialize M_R for ResNet victims (Sec. 4, "M_R is
// initialized from the main branch (excluding skip connections)").
type ResBlock struct {
	Conv1 *nn.Conv2D
	BN1   *nn.BatchNorm2D
	Act1  *nn.ReLU
	Conv2 *nn.Conv2D
	BN2   *nn.BatchNorm2D
	Act2  *nn.ReLU
	// Projection path for downsampling blocks; nil means identity skip.
	Down   *nn.Conv2D
	DownBN *nn.BatchNorm2D
	// WithSkip disables the skip entirely (plain-chain M_R variant).
	WithSkip bool
	name     string

	lastSkip *tensor.Tensor // cached skip output for backward
	lastIn   *tensor.Tensor

	// midTag and skipTag are the block's arena buffer keys, derived lazily
	// from the name so every construction path (builders, clones,
	// deserialization) gets them for free.
	midTag, skipTag string
}

// NewResBlock builds a basic block. stride 2 creates a projection skip.
func NewResBlock(name string, inC, outC, stride int, withSkip bool, rng *tensor.RNG) *ResBlock {
	b := &ResBlock{
		Conv1:    nn.NewConv2D(name+".conv1", inC, outC, 3, stride, 1, false, rng),
		BN1:      nn.NewBatchNorm2D(name+".bn1", outC),
		Act1:     nn.NewReLU(name + ".relu1"),
		Conv2:    nn.NewConv2D(name+".conv2", outC, outC, 3, 1, 1, false, rng),
		BN2:      nn.NewBatchNorm2D(name+".bn2", outC),
		Act2:     nn.NewReLU(name + ".relu2"),
		WithSkip: withSkip,
		name:     name,
	}
	if withSkip && (stride != 1 || inC != outC) {
		b.Down = nn.NewConv2D(name+".down", inC, outC, 1, stride, 0, false, rng)
		b.DownBN = nn.NewBatchNorm2D(name+".downbn", outC)
	}
	return b
}

// Name returns the stage's diagnostic name.
func (b *ResBlock) Name() string { return b.name }

// Params returns all trainable parameters of the block.
func (b *ResBlock) Params() []*nn.Param {
	ps := append(b.Conv1.Params(), b.BN1.Params()...)
	ps = append(ps, b.Conv2.Params()...)
	ps = append(ps, b.BN2.Params()...)
	if b.Down != nil {
		ps = append(ps, b.Down.Params()...)
		ps = append(ps, b.DownBN.Params()...)
	}
	return ps
}

// OutShape composes the main path.
func (b *ResBlock) OutShape(in []int) []int {
	return b.Conv2.OutShape(b.Conv1.OutShape(in))
}

// Forward runs the main path and (optionally) adds the skip. In eval mode no
// backward state is retained, so inputs are not pinned between requests.
func (b *ResBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		b.lastIn = x
	} else {
		b.lastIn, b.lastSkip = nil, nil
	}
	y := b.BN2.Forward(b.Conv2.Forward(b.Act1.Forward(b.BN1.Forward(b.Conv1.Forward(x, train), train), train), train), train)
	if b.WithSkip {
		skip := x
		if b.Down != nil {
			skip = b.DownBN.Forward(b.Down.Forward(x, train), train)
		}
		if train {
			b.lastSkip = skip
		}
		y = y.Clone()
		y.AddInPlace(skip)
	}
	return b.Act2.Forward(y, train)
}

// Backward reverses Forward, splitting the gradient between the main path
// and the skip.
func (b *ResBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := b.Act2.Backward(grad)
	dxMain := b.Conv1.Backward(b.BN1.Backward(b.Act1.Backward(b.Conv2.Backward(b.BN2.Backward(g)))))
	if !b.WithSkip {
		return dxMain
	}
	var dxSkip *tensor.Tensor
	if b.Down != nil {
		dxSkip = b.Down.Backward(b.DownBN.Backward(g))
	} else {
		dxSkip = g
	}
	dxMain.AddInPlace(dxSkip)
	return dxMain
}

// InferInto implements the stage inference path. The main path runs through
// one arena buffer with the normalizations and activations applied in
// place; the skip (identity or projection) is added into dst before the
// final activation, in the same element order as Forward, so the two paths
// agree bit for bit.
func (b *ResBlock) InferInto(dst, x *tensor.Tensor, a *nn.Arena) {
	if b.midTag == "" {
		b.midTag = b.name + ".mid"
		b.skipTag = b.name + ".skip"
	}
	n := x.Dim(0)
	oh := tensor.ConvOutDim(x.Dim(2), b.Conv1.KH, b.Conv1.Stride, b.Conv1.Pad)
	ow := tensor.ConvOutDim(x.Dim(3), b.Conv1.KW, b.Conv1.Stride, b.Conv1.Pad)
	mid := a.Tensor4(b.midTag, n, b.Conv1.OutC, oh, ow)
	b.Conv1.ForwardInto(mid, x, a)
	b.BN1.ForwardInto(mid, mid, a)
	b.Act1.ForwardInto(mid, mid, a)
	b.Conv2.ForwardInto(dst, mid, a)
	b.BN2.ForwardInto(dst, dst, a)
	if b.WithSkip {
		skip := x
		if b.Down != nil {
			skip = a.Tensor4(b.skipTag, n, b.Down.OutC, oh, ow)
			b.Down.ForwardInto(skip, x, a)
			b.DownBN.ForwardInto(skip, skip, a)
		}
		dst.AddInPlace(skip)
	}
	b.Act2.ForwardInto(dst, dst, a)
}

// OutChannels returns the block's output width.
func (b *ResBlock) OutChannels() int { return b.Conv2.OutC }

// InChannels returns the block's input width.
func (b *ResBlock) InChannels() int { return b.Conv1.InC }

// OutPrunable is false: identity skips tie block outputs across the stage,
// so only the internal (between conv1 and conv2) channels are prunable.
func (b *ResBlock) OutPrunable() bool { return false }

// OutGamma returns BN2's scale (informational; output pruning is disabled).
func (b *ResBlock) OutGamma() *nn.Param { return b.BN2.Gamma }

// InternalGamma returns BN1's scale, which ranks the prunable internal
// channels.
func (b *ResBlock) InternalGamma() *nn.Param { return b.BN1.Gamma }

// InternalChannels returns the internal width.
func (b *ResBlock) InternalChannels() int { return b.Conv1.OutC }

// PruneInternal keeps only the listed internal channels (conv1 outputs /
// conv2 inputs).
func (b *ResBlock) PruneInternal(keep []int) {
	b.Conv1.PruneOutput(keep)
	b.BN1.Prune(keep)
	b.Conv2.PruneInput(keep)
}

// PruneOut panics: block outputs are not prunable.
func (b *ResBlock) PruneOut(keep []int) {
	panic(fmt.Sprintf("zoo: %s output channels are tied by skip connections", b.name))
}

// PruneIn keeps only the listed input channels on both paths.
func (b *ResBlock) PruneIn(keep []int) {
	b.Conv1.PruneInput(keep)
	if b.Down != nil {
		b.Down.PruneInput(keep)
	}
}

// CloneStage deep-copies the block.
func (b *ResBlock) CloneStage() Stage {
	out := &ResBlock{
		Conv1:    nn.CloneOf(b.Conv1).(*nn.Conv2D),
		BN1:      nn.CloneOf(b.BN1).(*nn.BatchNorm2D),
		Act1:     nn.NewReLU(b.name + ".relu1"),
		Conv2:    nn.CloneOf(b.Conv2).(*nn.Conv2D),
		BN2:      nn.CloneOf(b.BN2).(*nn.BatchNorm2D),
		Act2:     nn.NewReLU(b.name + ".relu2"),
		WithSkip: b.WithSkip,
		name:     b.name,
	}
	if b.Down != nil {
		out.Down = nn.CloneOf(b.Down).(*nn.Conv2D)
		out.DownBN = nn.CloneOf(b.DownBN).(*nn.BatchNorm2D)
	}
	return out
}

// StripSkip returns a copy of the block with the skip connection removed —
// the transformation that derives the plain-chain M_R from a ResNet victim.
func (b *ResBlock) StripSkip() *ResBlock {
	out := b.CloneStage().(*ResBlock)
	out.WithSkip = false
	out.Down = nil
	out.DownBN = nil
	return out
}
