package zoo

import (
	"tbnet/internal/nn"
	"tbnet/internal/tensor"
)

// DWBlock is a MobileNet-style depthwise-separable stage: depthwise 3×3
// (spatial) → BN → ReLU → pointwise 1×1 (channel mixing) → BN → ReLU. Its
// prunable output group is the pointwise convolution's output channel set,
// ranked by the trailing BN — the same surface TBNet's composite pruning
// operates on for plain conv blocks.
type DWBlock struct {
	DW   *nn.DepthwiseConv2D
	BN1  *nn.BatchNorm2D
	Act1 *nn.ReLU
	PW   *nn.Conv2D
	BN2  *nn.BatchNorm2D
	Act2 *nn.ReLU
	name string
}

// NewDWBlock builds a depthwise-separable block; stride applies to the
// depthwise (spatial) convolution.
func NewDWBlock(name string, inC, outC, stride int, rng *tensor.RNG) *DWBlock {
	return &DWBlock{
		DW:   nn.NewDepthwiseConv2D(name+".dw", inC, 3, stride, 1, rng),
		BN1:  nn.NewBatchNorm2D(name+".bn1", inC),
		Act1: nn.NewReLU(name + ".relu1"),
		PW:   nn.NewConv2D(name+".pw", inC, outC, 1, 1, 0, false, rng),
		BN2:  nn.NewBatchNorm2D(name+".bn2", outC),
		Act2: nn.NewReLU(name + ".relu2"),
		name: name,
	}
}

// Name returns the stage's diagnostic name.
func (b *DWBlock) Name() string { return b.name }

// Params returns all trainable parameters.
func (b *DWBlock) Params() []*nn.Param {
	ps := append(b.DW.Params(), b.BN1.Params()...)
	ps = append(ps, b.PW.Params()...)
	return append(ps, b.BN2.Params()...)
}

// OutShape composes the block's layers.
func (b *DWBlock) OutShape(in []int) []int {
	return b.PW.OutShape(b.DW.OutShape(in))
}

// Forward runs dw → bn → relu → pw → bn → relu.
func (b *DWBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := b.Act1.Forward(b.BN1.Forward(b.DW.Forward(x, train), train), train)
	return b.Act2.Forward(b.BN2.Forward(b.PW.Forward(y, train), train), train)
}

// Backward reverses Forward.
func (b *DWBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := b.PW.Backward(b.BN2.Backward(b.Act2.Backward(grad)))
	return b.DW.Backward(b.BN1.Backward(b.Act1.Backward(g)))
}

// InferInto implements the stage inference path: depthwise into an arena
// buffer with its norm and activation in place, then pointwise into dst
// with the trailing norm and activation in place.
func (b *DWBlock) InferInto(dst, x *tensor.Tensor, a *nn.Arena) {
	n := x.Dim(0)
	oh := tensor.ConvOutDim(x.Dim(2), b.DW.K, b.DW.Stride, b.DW.Pad)
	ow := tensor.ConvOutDim(x.Dim(3), b.DW.K, b.DW.Stride, b.DW.Pad)
	mid := a.Tensor4(b.name, n, b.DW.C, oh, ow)
	b.DW.ForwardInto(mid, x, a)
	b.BN1.ForwardInto(mid, mid, a)
	b.Act1.ForwardInto(mid, mid, a)
	b.PW.ForwardInto(dst, mid, a)
	b.BN2.ForwardInto(dst, dst, a)
	b.Act2.ForwardInto(dst, dst, a)
}

// OutChannels returns the pointwise conv's output width.
func (b *DWBlock) OutChannels() int { return b.PW.OutC }

// InChannels returns the depthwise width.
func (b *DWBlock) InChannels() int { return b.DW.C }

// OutPrunable is true: the pointwise outputs are freely prunable.
func (b *DWBlock) OutPrunable() bool { return true }

// OutGamma returns BN2's scale, ranking the output channels.
func (b *DWBlock) OutGamma() *nn.Param { return b.BN2.Gamma }

// PruneOut keeps only the listed output channels.
func (b *DWBlock) PruneOut(keep []int) {
	b.PW.PruneOutput(keep)
	b.BN2.Prune(keep)
}

// PruneIn keeps only the listed input channels (depthwise filters, their BN,
// and the pointwise input side).
func (b *DWBlock) PruneIn(keep []int) {
	b.DW.PruneChannels(keep)
	b.BN1.Prune(keep)
	b.PW.PruneInput(keep)
}

// CloneStage deep-copies the block.
func (b *DWBlock) CloneStage() Stage {
	return &DWBlock{
		DW:   nn.CloneOf(b.DW).(*nn.DepthwiseConv2D),
		BN1:  nn.CloneOf(b.BN1).(*nn.BatchNorm2D),
		Act1: nn.NewReLU(b.name + ".relu1"),
		PW:   nn.CloneOf(b.PW).(*nn.Conv2D),
		BN2:  nn.CloneOf(b.BN2).(*nn.BatchNorm2D),
		Act2: nn.NewReLU(b.name + ".relu2"),
		name: b.name,
	}
}

// MobileNetConfig describes a MobileNet-style network: a stem conv followed
// by depthwise-separable blocks.
type MobileNetConfig struct {
	Name    string
	Stem    int
	Widths  []int // one DWBlock per entry
	Strides []int // parallel to Widths
	Classes int
	InC     int
}

// MobileNetSConfig returns a small MobileNet for 16×16 inputs.
func MobileNetSConfig(classes int) MobileNetConfig {
	return MobileNetConfig{
		Name:    "MobileNet-S",
		Stem:    16,
		Widths:  []int{24, 32, 32, 48, 48, 64},
		Strides: []int{1, 2, 1, 2, 1, 2},
		Classes: classes,
		InC:     3,
	}
}

// TinyMobileNetConfig is a 2-block network for fast unit tests.
func TinyMobileNetConfig(classes int) MobileNetConfig {
	return MobileNetConfig{
		Name:    "TinyMobileNet",
		Stem:    8,
		Widths:  []int{12, 16},
		Strides: []int{2, 2},
		Classes: classes,
		InC:     3,
	}
}

// BuildMobileNet constructs the staged model.
func BuildMobileNet(cfg MobileNetConfig, rng *tensor.RNG) *Model {
	m := &Model{Name: cfg.Name, Arch: "mobilenet", InC: cfg.InC, Classes: cfg.Classes}
	m.Stages = append(m.Stages, NewConvBlock(cfg.Name+".stem", cfg.InC, cfg.Stem, 1, 1, rng))
	in := cfg.Stem
	for i, w := range cfg.Widths {
		m.Stages = append(m.Stages, NewDWBlock(
			cfg.Name+".dw"+string(rune('0'+i)), in, w, cfg.Strides[i], rng))
		in = w
	}
	m.Head = NewHead(cfg.Name+".head", in, cfg.Classes, rng)
	return m
}
