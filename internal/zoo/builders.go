package zoo

import (
	"fmt"

	"tbnet/internal/tensor"
)

// VGGConfig describes a VGG-style plain network: one ConvBlock per width
// entry, with a max pool after each stage whose index appears in Pools.
type VGGConfig struct {
	Name    string
	Widths  []int
	Pools   map[int]bool // stage index → pool 2×2 after the block
	Classes int
	InC     int
}

// VGG18Config returns the reproduction's VGG-style configuration: eight conv
// stages (the paper's "VGG18" scaled down in width for CPU training) with
// four 2× downsamplings, sized for 16×16 inputs.
func VGG18Config(classes int) VGGConfig {
	return VGGConfig{
		Name:    "VGG18-S",
		Widths:  []int{16, 16, 32, 32, 48, 48, 64, 64},
		Pools:   map[int]bool{1: true, 3: true, 5: true, 7: true},
		Classes: classes,
		InC:     3,
	}
}

// TinyVGGConfig is a 3-stage network for fast unit tests.
func TinyVGGConfig(classes int) VGGConfig {
	return VGGConfig{
		Name:    "TinyVGG",
		Widths:  []int{8, 12, 16},
		Pools:   map[int]bool{0: true, 2: true},
		Classes: classes,
		InC:     3,
	}
}

// BuildVGG constructs the staged model for a VGG config.
func BuildVGG(cfg VGGConfig, rng *tensor.RNG) *Model {
	m := &Model{Name: cfg.Name, Arch: "vgg", InC: cfg.InC, Classes: cfg.Classes}
	in := cfg.InC
	for i, w := range cfg.Widths {
		pool := 1
		if cfg.Pools[i] {
			pool = 2
		}
		m.Stages = append(m.Stages, NewConvBlock(fmt.Sprintf("%s.s%d", cfg.Name, i), in, w, 1, pool, rng))
		in = w
	}
	m.Head = NewHead(cfg.Name+".head", in, cfg.Classes, rng)
	return m
}

// ResNetConfig describes a CIFAR-style ResNet: a stem conv followed by three
// stages of BlocksPerStage basic blocks, widths ×1, ×2, ×4.
type ResNetConfig struct {
	Name           string
	BaseWidth      int
	BlocksPerStage int
	Classes        int
	InC            int
}

// ResNet20Config returns the paper's ResNet-20 (3 stages × 3 blocks) at a
// reduced base width for CPU training.
func ResNet20Config(classes int) ResNetConfig {
	return ResNetConfig{Name: "ResNet20-S", BaseWidth: 8, BlocksPerStage: 3, Classes: classes, InC: 3}
}

// TinyResNetConfig is a 3-block network for fast unit tests.
func TinyResNetConfig(classes int) ResNetConfig {
	return ResNetConfig{Name: "TinyResNet", BaseWidth: 6, BlocksPerStage: 1, Classes: classes, InC: 3}
}

// BuildResNet constructs the staged model for a ResNet config. withSkip=false
// produces the plain-chain variant (skip connections removed), which the
// paper uses to initialize M_R from a ResNet victim.
func BuildResNet(cfg ResNetConfig, withSkip bool, rng *tensor.RNG) *Model {
	m := &Model{Name: cfg.Name, Arch: "resnet", InC: cfg.InC, Classes: cfg.Classes}
	stem := NewConvBlock(cfg.Name+".stem", cfg.InC, cfg.BaseWidth, 1, 1, rng)
	stem.OutFixed = true // tied to the identity skips of stage 1
	m.Stages = append(m.Stages, stem)
	in := cfg.BaseWidth
	for stage := 0; stage < 3; stage++ {
		width := cfg.BaseWidth << stage
		for blk := 0; blk < cfg.BlocksPerStage; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			name := fmt.Sprintf("%s.g%db%d", cfg.Name, stage, blk)
			m.Stages = append(m.Stages, NewResBlock(name, in, width, stride, withSkip, rng))
			in = width
		}
	}
	m.Head = NewHead(cfg.Name+".head", in, cfg.Classes, rng)
	return m
}

// StripSkips returns a deep copy of a ResNet model with every skip connection
// removed (ConvBlock stages are cloned unchanged). For VGG models it is an
// ordinary clone.
func StripSkips(m *Model) *Model {
	out := &Model{Name: m.Name + ".plain", Arch: m.Arch, InC: m.InC, Classes: m.Classes, Head: m.Head.Clone()}
	out.Stages = make([]Stage, len(m.Stages))
	for i, s := range m.Stages {
		if rb, ok := s.(*ResBlock); ok {
			out.Stages[i] = rb.StripSkip()
		} else {
			out.Stages[i] = s.CloneStage()
		}
	}
	return out
}
