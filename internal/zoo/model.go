package zoo

import (
	"fmt"

	"tbnet/internal/nn"
	"tbnet/internal/tensor"
)

// Head is the classifier head: global average pooling followed by a dense
// layer. Both evaluated architectures use it, which keeps channel pruning of
// the final stage simple (each channel contributes exactly one head input).
type Head struct {
	GAP  *nn.GlobalAvgPool
	FC   *nn.Dense
	name string
}

// NewHead builds a classifier head for the given feature width.
func NewHead(name string, channels, classes int, rng *tensor.RNG) *Head {
	return &Head{
		GAP:  nn.NewGlobalAvgPool(name + ".gap"),
		FC:   nn.NewDense(name+".fc", channels, classes, rng),
		name: name,
	}
}

// Name returns the head's diagnostic name.
func (h *Head) Name() string { return h.name }

// Params returns the dense parameters.
func (h *Head) Params() []*nn.Param { return h.FC.Params() }

// OutShape maps [N,C,H,W] to [N, classes].
func (h *Head) OutShape(in []int) []int { return h.FC.OutShape(h.GAP.OutShape(in)) }

// Forward computes logits.
func (h *Head) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return h.FC.Forward(h.GAP.Forward(x, train), train)
}

// Backward reverses Forward.
func (h *Head) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return h.GAP.Backward(h.FC.Backward(grad))
}

// InferInto is the head's preplanned inference path: pooled features go
// through an arena buffer, logits land in dst ([N, classes]).
func (h *Head) InferInto(dst, x *tensor.Tensor, a *nn.Arena) {
	pooled := a.Tensor2(h.name, x.Dim(0), x.Dim(1))
	h.GAP.ForwardInto(pooled, x, a)
	h.FC.ForwardInto(dst, pooled, a)
}

// PruneIn keeps only the listed input channels.
func (h *Head) PruneIn(keep []int) { h.FC.PruneInput(keep, 1) }

// Clone deep-copies the head.
func (h *Head) Clone() *Head {
	return &Head{
		GAP:  nn.NewGlobalAvgPool(h.name + ".gap"),
		FC:   nn.CloneOf(h.FC).(*nn.Dense),
		name: h.name,
	}
}

// Model is a staged CNN: Stages produce feature maps (the TBNet transfer
// points) and Head turns the last feature map into logits.
type Model struct {
	Name    string
	Arch    string // "vgg" or "resnet"
	InC     int
	Classes int
	Stages  []Stage
	Head    *Head
}

// Forward computes logits for x.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, s := range m.Stages {
		x = s.Forward(x, train)
	}
	return m.Head.Forward(x, train)
}

// Backward propagates the logit gradient through head and stages.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	grad = m.Head.Backward(grad)
	for i := len(m.Stages) - 1; i >= 0; i-- {
		grad = m.Stages[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	for _, s := range m.Stages {
		ps = append(ps, s.Params()...)
	}
	return append(ps, m.Head.Params()...)
}

// Reinitialize re-randomizes every parameter in place, preserving the
// architecture: weights get fresh He-normal draws, batch norms reset to
// γ=1/β=0. Used to build TBNet's secure branch with the victim's
// architecture but none of its knowledge.
func (m *Model) Reinitialize(rng *tensor.RNG) {
	for _, s := range m.Stages {
		switch b := s.(type) {
		case *ConvBlock:
			b.Conv.Reinit(rng)
			b.BN.Reinit(rng)
		case *DWBlock:
			b.DW.Reinit(rng)
			b.BN1.Reinit(rng)
			b.PW.Reinit(rng)
			b.BN2.Reinit(rng)
		case *ResBlock:
			b.Conv1.Reinit(rng)
			b.BN1.Reinit(rng)
			b.Conv2.Reinit(rng)
			b.BN2.Reinit(rng)
			if b.Down != nil {
				b.Down.Reinit(rng)
				b.DownBN.Reinit(rng)
			}
		}
	}
	m.Head.FC.Reinit(rng)
}

// Clone deep-copies the model.
func (m *Model) Clone() *Model {
	out := &Model{Name: m.Name, Arch: m.Arch, InC: m.InC, Classes: m.Classes, Head: m.Head.Clone()}
	out.Stages = make([]Stage, len(m.Stages))
	for i, s := range m.Stages {
		out.Stages[i] = s.CloneStage()
	}
	return out
}

// GroupKind distinguishes the two prunable channel-group varieties.
type GroupKind int

const (
	// GroupOutput is a stage's output channel set (VGG conv blocks); pruning
	// it also narrows the next consumer's input.
	GroupOutput GroupKind = iota
	// GroupInternal is a residual block's hidden channel set between its two
	// convolutions; pruning is contained within the block.
	GroupInternal
)

// String returns a short label.
func (k GroupKind) String() string {
	if k == GroupOutput {
		return "output"
	}
	return "internal"
}

// GroupRef identifies one prunable channel group of a model.
type GroupRef struct {
	Stage int
	Kind  GroupKind
}

// Groups enumerates the model's prunable channel groups in stage order.
func (m *Model) Groups() []GroupRef {
	var out []GroupRef
	for i, s := range m.Stages {
		switch b := s.(type) {
		case *ConvBlock:
			if b.OutPrunable() {
				out = append(out, GroupRef{Stage: i, Kind: GroupOutput})
			}
		case *DWBlock:
			out = append(out, GroupRef{Stage: i, Kind: GroupOutput})
		case *ResBlock:
			out = append(out, GroupRef{Stage: i, Kind: GroupInternal})
		}
	}
	return out
}

// GroupGamma returns the BN scale parameter ranking the group's channels.
func (m *Model) GroupGamma(g GroupRef) *nn.Param {
	switch b := m.Stages[g.Stage].(type) {
	case *ConvBlock:
		if g.Kind != GroupOutput {
			panic(fmt.Sprintf("zoo: conv block %d has no %s group", g.Stage, g.Kind))
		}
		return b.OutGamma()
	case *DWBlock:
		if g.Kind != GroupOutput {
			panic(fmt.Sprintf("zoo: dw block %d has no %s group", g.Stage, g.Kind))
		}
		return b.OutGamma()
	case *ResBlock:
		if g.Kind != GroupInternal {
			panic(fmt.Sprintf("zoo: res block %d has no %s group", g.Stage, g.Kind))
		}
		return b.InternalGamma()
	}
	panic("zoo: unknown stage type")
}

// GroupSize returns the group's current channel count.
func (m *Model) GroupSize(g GroupRef) int { return m.GroupGamma(g).Value.Size() }

// ApplyKeep prunes the group down to the listed channels, updating every
// consumer of those channels (the next stage's input or the head).
func (m *Model) ApplyKeep(g GroupRef, keep []int) {
	switch b := m.Stages[g.Stage].(type) {
	case *ConvBlock, *DWBlock:
		b.PruneOut(keep)
		if g.Stage+1 < len(m.Stages) {
			m.Stages[g.Stage+1].PruneIn(keep)
		} else {
			m.Head.PruneIn(keep)
		}
	case *ResBlock:
		b.PruneInternal(keep)
	}
}

// StageShapes returns the output shape of every stage for the given input
// shape (including batch), plus the head output shape at the end.
func (m *Model) StageShapes(in []int) [][]int {
	var out [][]int
	cur := in
	for _, s := range m.Stages {
		cur = s.OutShape(cur)
		out = append(out, append([]int(nil), cur...))
	}
	out = append(out, m.Head.OutShape(cur))
	return out
}
