// Package buildinfo carries the release identity every tbnet surface
// reports: the -version flags of the CLI and daemon, and the
// tbnet_build_info gauge on /metrics. It exists as a leaf package so every
// layer — binaries, httpd, the root facade — can import it without cycles.
package buildinfo

import "runtime"

// Version is the tbnet release identifier, bumped once per released
// change-set. It is a constant (not an ldflags injection) so offline builds
// and tests see the same identity the metrics surface exports.
const Version = "0.8.0"

// GoVersion reports the Go toolchain the binary was built with, as exposed
// by the goversion label on tbnet_build_info.
func GoVersion() string { return runtime.Version() }
