package attack

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"tbnet/internal/tee"
	"tbnet/internal/tensor"
	"tbnet/internal/zoo"
)

var fuzzShape = []int{1, 3, 16, 16}

func fuzzModel() *zoo.Model {
	return zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(77))
}

// checkGuess asserts the attack invariants that must survive any input: no
// panic (implicit), a hit rate inside [0,1], and no more width guesses than
// the stolen branch has stages.
func checkGuess(t *testing.T, g ArchGuess, m *zoo.Model, tag string) {
	t.Helper()
	hr := g.HitRate(m)
	if math.IsNaN(hr) || hr < 0 || hr > 1 {
		t.Fatalf("%s: hit rate %v outside [0,1]", tag, hr)
	}
	if len(g.Widths) > len(m.Stages) {
		t.Fatalf("%s: %d width guesses for a %d-stage branch", tag, len(g.Widths), len(m.Stages))
	}
}

// TestInferArchitectureAdversarialViews feeds the attack event streams no
// honest deployment produces — empty, truncated, shuffled, single-world,
// zero- and absurd-sized payloads — and requires it to degrade gracefully.
func TestInferArchitectureAdversarialViews(t *testing.T) {
	m := fuzzModel()
	realistic := []tee.Event{
		{Kind: tee.EvSMC, Label: "input"},
		{Kind: tee.EvTransfer, Label: "input", Bytes: 3 * 16 * 16 * 4},
		{Kind: tee.EvREECompute, Bytes: 16 * 16 * 16 * 4},
		{Kind: tee.EvSMC}, {Kind: tee.EvTransfer, Bytes: 16 * 16 * 16 * 4},
		{Kind: tee.EvREECompute, Bytes: 32 * 8 * 8 * 4},
		{Kind: tee.EvSMC}, {Kind: tee.EvTransfer, Bytes: 32 * 8 * 8 * 4},
	}
	shuffled := append([]tee.Event(nil), realistic...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	views := map[string][]tee.Event{
		"empty":     nil,
		"input":     realistic[:2],
		"truncated": realistic[:4],
		"shuffled":  shuffled,
		"single-world": {
			{Kind: tee.EvREECompute, Bytes: 4096},
			{Kind: tee.EvREECompute, Bytes: 4096},
			{Kind: tee.EvREECompute, Bytes: 4096},
		},
		"zero-bytes": {
			{Kind: tee.EvTransfer}, {Kind: tee.EvTransfer}, {Kind: tee.EvTransfer},
		},
		"negative-bytes": {
			{Kind: tee.EvTransfer, Bytes: -8}, {Kind: tee.EvTransfer, Bytes: -1 << 40},
		},
		"huge-bytes": {
			{Kind: tee.EvTransfer, Bytes: math.MaxInt64},
			{Kind: tee.EvTransfer, Bytes: math.MaxInt64},
			{Kind: tee.EvREECompute, Bytes: math.MaxInt64},
		},
		"tee-only": {
			{Kind: tee.EvTEECompute}, {Kind: tee.EvResult},
		},
	}
	spatial := StageSpatial(m, fuzzShape)
	for name, view := range views {
		checkGuess(t, InferArchitecture(view, m, fuzzShape), m, "arch/"+name)
		for _, batch := range []int{-1, 0, 1, 7} {
			checkGuess(t, InferFromExposure(view, spatial, batch, 3*16*16*4), m, "exposure/"+name)
		}
	}
	// Degenerate attacker geometry: no spatial knowledge at all.
	checkGuess(t, InferFromExposure(realistic, nil, 1, 0), m, "exposure/no-spatial")
	checkGuess(t, InferFromExposure(realistic, [][2]int{{0, 0}}, 1, 0), m, "exposure/zero-spatial")
}

// FuzzInferArchitecture decodes arbitrary bytes into event streams and
// requires both attack entry points to neither panic nor report a hit rate
// outside [0,1]. Each 9-byte chunk becomes one event: kind from the first
// byte, payload size (sign included) from the next eight.
func FuzzInferArchitecture(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{
		byte(tee.EvSMC), 0, 0, 0, 0, 0, 0, 0, 0,
		byte(tee.EvTransfer), 0, 48, 0, 0, 0, 0, 0, 0,
		byte(tee.EvREECompute), 0, 64, 0, 0, 0, 0, 0, 0,
		byte(tee.EvTransfer), 255, 255, 255, 255, 255, 255, 255, 255,
	})
	m := fuzzModel()
	spatial := StageSpatial(m, fuzzShape)
	f.Fuzz(func(t *testing.T, data []byte) {
		var view []tee.Event
		for len(data) >= 9 {
			view = append(view, tee.Event{
				Kind:  tee.EventKind(data[0] % 8),
				Bytes: int64(binary.LittleEndian.Uint64(data[1:9])),
			})
			data = data[9:]
		}
		g := InferArchitecture(view, m, fuzzShape)
		if hr := g.HitRate(m); math.IsNaN(hr) || hr < 0 || hr > 1 {
			t.Fatalf("InferArchitecture hit rate %v outside [0,1]", hr)
		}
		g = InferFromExposure(view, spatial, 1, 3*16*16*4)
		if hr := g.HitRate(m); math.IsNaN(hr) || hr < 0 || hr > 1 {
			t.Fatalf("InferFromExposure hit rate %v outside [0,1]", hr)
		}
	})
}
