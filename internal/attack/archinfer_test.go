package attack

import (
	"testing"

	"tbnet/internal/core"
	"tbnet/internal/tee"
	"tbnet/internal/tensor"
	"tbnet/internal/zoo"
)

// deployAndTrace runs one inference through a deployment and returns the
// attacker-visible trace.
func deployAndTrace(t *testing.T, tb *core.TwoBranch) []tee.Event {
	t.Helper()
	device := tee.Unbounded(tee.RaspberryPi3())
	dep, err := core.Deploy(tb, device, []int{1, 3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 16, 16)
	tensor.NewRNG(9).FillNormal(x, 0, 1)
	if _, err := dep.Infer(x); err != nil {
		t.Fatal(err)
	}
	return dep.Enclave.Trace().AttackerView()
}

// finalizedPair builds a pruned two-branch model, returning the version with
// and without rollback finalization.
func finalizedPair(t *testing.T) (withRb, withoutRb *core.TwoBranch) {
	t.Helper()
	train, test := task(4, 64, 32, 21)
	victim := zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(22))
	core.TrainModel(victim, train, nil, cfg(2))
	tb := core.NewTwoBranch(victim, 23)
	core.TrainTwoBranch(tb, train, test, cfg(2))
	pc := core.DefaultPruneConfig(1.0, 1)
	pc.MaxIters = 2
	pc.FineTune = cfg(1)
	res := core.PruneTwoBranch(tb, train, test, pc)
	if res.Iterations == 0 {
		t.Skip("no pruning applied")
	}
	withoutRb = tb.Clone()
	withoutRb.Finalized = true
	core.FinalizeRollback(tb, res)
	return tb, withoutRb
}

func TestArchInferenceExactWithoutRollback(t *testing.T) {
	_, noRb := finalizedPair(t)
	view := deployAndTrace(t, noRb)
	guess := InferArchitecture(view, noRb.MR.Clone(), []int{1, 3, 16, 16})
	if hr := guess.HitRate(noRb.MT); hr != 1.0 {
		t.Fatalf("without rollback the attacker should recover M_T exactly, hit rate %v", hr)
	}
}

func TestArchInferenceDegradedByRollback(t *testing.T) {
	withRb, _ := finalizedPair(t)
	view := deployAndTrace(t, withRb)
	guess := InferArchitecture(view, withRb.MR.Clone(), []int{1, 3, 16, 16})
	if hr := guess.HitRate(withRb.MT); hr == 1.0 {
		t.Fatal("rollback should prevent exact architecture recovery")
	}
	// The guess tracks M_R's (wider) transfer payloads.
	for i, w := range guess.Widths {
		if w != withRb.MR.Stages[i].OutChannels() {
			t.Fatalf("stage %d guess %d, expected M_R width %d", i, w, withRb.MR.Stages[i].OutChannels())
		}
	}
}

func TestArchInferenceEmptyTrace(t *testing.T) {
	m := zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(24))
	g := InferArchitecture(nil, m, []int{1, 3, 16, 16})
	if len(g.Widths) != 0 || g.HitRate(m) != 0 {
		t.Fatal("empty trace must yield an empty guess")
	}
}
