package attack

import (
	"tbnet/internal/tee"
	"tbnet/internal/zoo"
)

// Architecture-inference attack: the paper argues (Sec. 3.5) that without
// the rollback finalization, an attacker can read M_T's architecture
// straight off the REE, because the per-stage transfer payload sizes equal
// M_T's layer widths. This file makes that argument executable.
//
// The attacker observes the one-way channel: every EvTransfer event's byte
// count is visible in normal-world shared memory. Combined with the stolen
// M_R (which reveals each stage's spatial dimensions), the payload sizes
// yield per-stage channel counts. Before rollback those equal M_T's widths
// exactly; after rollback M_R is one pruning iteration wider, so the guess
// systematically overestimates the secure branch.

// ArchGuess is the attacker's estimate of the secure branch's stage widths.
type ArchGuess struct {
	// Widths[i] is the guessed channel count of M_T's stage i output.
	Widths []int
}

// InferArchitecture reconstructs the secure branch's presumed stage widths
// from one inference's attacker-visible trace. view is the attacker's event
// stream (tee.Trace.AttackerView), stolenMR the extracted unsecured branch,
// and inShape the inference input shape (the attacker chooses the query, so
// it knows the shape).
func InferArchitecture(view []tee.Event, stolenMR *zoo.Model, inShape []int) ArchGuess {
	shapes := stolenMR.StageShapes(inShape)
	var transfers []int64
	for _, e := range view {
		if e.Kind == tee.EvTransfer {
			transfers = append(transfers, e.Bytes)
		}
	}
	batch := 1
	if len(inShape) > 0 && inShape[0] > 1 {
		batch = inShape[0]
	}
	// The first transfer is the raw input; per-stage feature maps follow.
	var g ArchGuess
	for i := 0; i < len(stolenMR.Stages) && i+1 < len(transfers); i++ {
		if len(shapes[i]) < 4 {
			break
		}
		h, w := shapes[i][2], shapes[i][3]
		if h <= 0 || w <= 0 {
			break
		}
		g.Widths = append(g.Widths, int(transfers[i+1]/4/int64(h*w*batch)))
	}
	return g
}

// InferFromExposure generalizes the attack to arbitrary placement traces
// (the defense strategies of Sec. 2.3): stage widths are read wherever the
// placement lets feature maps touch normal-world memory. An EvREECompute
// payload is an REE-resident feature map — directly readable, its byte count
// divided by the stage's spatial extent yields the channel count. An
// EvTransfer payload crossing shared memory reveals a boundary stage's width
// the same way, except when it merely re-stages the feature map of the
// REE stage just observed (DarkneTZ's boundary crossing), or when it is the
// attacker's own raw query (the attacker chose it, so it recognizes
// inputBytes and skips it).
//
// spatial[i] holds stage i's output (height, width), which the attacker
// derives from the victim's architecture family and its own query shape;
// batch is the per-query sample count the attacker assumes. Under this
// model FullTEE reveals nothing, a DarkneTZ split reveals exactly its
// REE-resident prefix, and ShadowNet/MirrorNet reveal every stage.
func InferFromExposure(view []tee.Event, spatial [][2]int, batch int, inputBytes int64) ArchGuess {
	if batch < 1 {
		batch = 1
	}
	var g ArchGuess
	si := 0
	sawInput := false
	var lastREE int64 = -1
	width := func(bytes int64) (int, bool) {
		if si >= len(spatial) {
			return 0, false
		}
		h, w := spatial[si][0], spatial[si][1]
		if h <= 0 || w <= 0 {
			return 0, false
		}
		return int(bytes / 4 / int64(h*w*batch)), true
	}
	for _, e := range view {
		if si >= len(spatial) {
			break
		}
		switch e.Kind {
		case tee.EvREECompute:
			if e.Bytes <= 0 {
				continue
			}
			c, ok := width(e.Bytes)
			if !ok {
				return g
			}
			g.Widths = append(g.Widths, c)
			lastREE = e.Bytes
			si++
		case tee.EvTransfer:
			if !sawInput && e.Bytes == inputBytes {
				sawInput = true
				continue
			}
			if e.Bytes == lastREE {
				// Boundary re-staging of the feature map already read off the
				// REE — no new information.
				lastREE = -1
				continue
			}
			c, ok := width(e.Bytes)
			if !ok {
				return g
			}
			g.Widths = append(g.Widths, c)
			lastREE = -1
			si++
		}
	}
	return g
}

// StageSpatial returns each stage's output (height, width) for a model of
// the victim's architecture family — the geometry InferFromExposure assumes
// the attacker reconstructs from the family and its own query shape.
func StageSpatial(family *zoo.Model, inShape []int) [][2]int {
	shapes := family.StageShapes(inShape)
	out := make([][2]int, 0, len(family.Stages))
	for i := range family.Stages {
		if i >= len(shapes) || len(shapes[i]) < 4 {
			break
		}
		out = append(out, [2]int{shapes[i][2], shapes[i][3]})
	}
	return out
}

// HitRate compares a guess against the true secure branch, returning the
// fraction of stages whose width the attacker got exactly right.
func (g ArchGuess) HitRate(mt *zoo.Model) float64 {
	if len(g.Widths) == 0 {
		return 0
	}
	hits, total := 0, 0
	for i, s := range mt.Stages {
		if i >= len(g.Widths) {
			break
		}
		total++
		if g.Widths[i] == s.OutChannels() {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
