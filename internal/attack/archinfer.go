package attack

import (
	"tbnet/internal/tee"
	"tbnet/internal/zoo"
)

// Architecture-inference attack: the paper argues (Sec. 3.5) that without
// the rollback finalization, an attacker can read M_T's architecture
// straight off the REE, because the per-stage transfer payload sizes equal
// M_T's layer widths. This file makes that argument executable.
//
// The attacker observes the one-way channel: every EvTransfer event's byte
// count is visible in normal-world shared memory. Combined with the stolen
// M_R (which reveals each stage's spatial dimensions), the payload sizes
// yield per-stage channel counts. Before rollback those equal M_T's widths
// exactly; after rollback M_R is one pruning iteration wider, so the guess
// systematically overestimates the secure branch.

// ArchGuess is the attacker's estimate of the secure branch's stage widths.
type ArchGuess struct {
	// Widths[i] is the guessed channel count of M_T's stage i output.
	Widths []int
}

// InferArchitecture reconstructs the secure branch's presumed stage widths
// from one inference's attacker-visible trace. view is the attacker's event
// stream (tee.Trace.AttackerView), stolenMR the extracted unsecured branch,
// and inShape the inference input shape (the attacker chooses the query, so
// it knows the shape).
func InferArchitecture(view []tee.Event, stolenMR *zoo.Model, inShape []int) ArchGuess {
	shapes := stolenMR.StageShapes(inShape)
	var transfers []int64
	for _, e := range view {
		if e.Kind == tee.EvTransfer {
			transfers = append(transfers, e.Bytes)
		}
	}
	// The first transfer is the raw input; per-stage feature maps follow.
	var g ArchGuess
	for i := 0; i < len(stolenMR.Stages) && i+1 < len(transfers); i++ {
		h, w := shapes[i][2], shapes[i][3]
		batch := inShape[0]
		g.Widths = append(g.Widths, int(transfers[i+1]/4/int64(h*w*batch)))
	}
	return g
}

// HitRate compares a guess against the true secure branch, returning the
// fraction of stages whose width the attacker got exactly right.
func (g ArchGuess) HitRate(mt *zoo.Model) float64 {
	if len(g.Widths) == 0 {
		return 0
	}
	hits, total := 0, 0
	for i, s := range mt.Stages {
		if i >= len(g.Widths) {
			break
		}
		total++
		if g.Widths[i] == s.OutChannels() {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
