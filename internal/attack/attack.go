// Package attack implements the paper's threat model (Sec. 2.2): an attacker
// who extracts everything resident in the REE — i.e., the unsecured branch
// M_R, weights and architecture — and tries to obtain a model with accuracy
// comparable to the victim. Two attacks are evaluated:
//
//   - Direct use (Table 1's "Attack Acc."): run the stolen M_R standalone.
//   - Fine-tuning (Fig. 2): retrain the stolen M_R with a fraction of the
//     original training data, from 1% to 100%.
package attack

import (
	"tbnet/internal/core"
	"tbnet/internal/data"
	"tbnet/internal/zoo"
)

// DirectUse evaluates the stolen unsecured branch as a standalone classifier
// — the attacker transplants M_R (including the stale victim head left in
// REE) and uses it directly.
func DirectUse(stolen *zoo.Model, test *data.Dataset, batchSize int) float64 {
	return core.EvaluateModel(stolen, test, batchSize)
}

// FineTuneConfig controls the fine-tuning attack.
type FineTuneConfig struct {
	// Fraction of the victim's training data available to the attacker.
	Fraction float64
	// Train is the optimization configuration (the attacker trains every
	// parameter of the stolen model, head included).
	Train core.TrainConfig
	// SubsetSeed controls which examples the attacker holds.
	SubsetSeed uint64
}

// FineTune retrains a *copy* of the stolen branch on the attacker's data
// fraction and returns its test accuracy. The input model is not mutated.
func FineTune(stolen *zoo.Model, train, test *data.Dataset, cfg FineTuneConfig) float64 {
	m := stolen.Clone()
	sub := train.Subset(cfg.Fraction, cfg.SubsetSeed)
	tc := cfg.Train
	tc.Lambda = 0 // the attacker has no reason to sparsify
	core.TrainModel(m, sub, nil, tc)
	return core.EvaluateModel(m, test, tc.BatchSize)
}

// Curve runs the fine-tuning attack across data-availability fractions,
// returning (fraction, accuracy) pairs — the series plotted in Fig. 2.
func Curve(stolen *zoo.Model, train, test *data.Dataset, fractions []float64, tc core.TrainConfig, seed uint64) [][2]float64 {
	out := make([][2]float64, 0, len(fractions))
	for i, f := range fractions {
		acc := FineTune(stolen, train, test, FineTuneConfig{
			Fraction:   f,
			Train:      tc,
			SubsetSeed: seed + uint64(i),
		})
		out = append(out, [2]float64{f, acc})
	}
	return out
}
