package attack

import (
	"testing"

	"tbnet/internal/core"
	"tbnet/internal/data"
	"tbnet/internal/tensor"
	"tbnet/internal/zoo"
)

func task(classes, train, test int, seed uint64) (*data.Dataset, *data.Dataset) {
	return data.Generate(data.SynthConfig{
		Name: "task", Classes: classes, H: 16, W: 16,
		Train: train, Test: test, Seed: seed,
		NoiseStd: 0.3, MaxShift: 1, Components: 3,
	})
}

func cfg(epochs int) core.TrainConfig {
	c := core.DefaultTrainConfig(epochs)
	c.BatchSize = 16
	c.LR = 0.05
	return c
}

func TestDirectUseOnUntrainedModelIsNearChance(t *testing.T) {
	_, test := task(4, 32, 64, 1)
	m := zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(2))
	acc := DirectUse(m, test, 16)
	if acc > 0.6 {
		t.Fatalf("untrained model accuracy %.2f suspiciously high", acc)
	}
}

func TestDirectUseOnTrainedVictimIsHigh(t *testing.T) {
	train, test := task(4, 96, 48, 3)
	m := zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(4))
	core.TrainModel(m, train, nil, cfg(6))
	acc := DirectUse(m, test, 16)
	if acc < 0.5 {
		t.Fatalf("trained victim accuracy %.2f too low for the attack comparison to mean anything", acc)
	}
}

func TestFineTuneDoesNotMutateInput(t *testing.T) {
	train, test := task(4, 48, 24, 5)
	m := zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(6))
	w := m.Stages[0].(*zoo.ConvBlock).Conv.W.Value.Clone()
	FineTune(m, train, test, FineTuneConfig{Fraction: 0.5, Train: cfg(1), SubsetSeed: 7})
	got := m.Stages[0].(*zoo.ConvBlock).Conv.W.Value
	for i := range w.Data() {
		if got.Data()[i] != w.Data()[i] {
			t.Fatal("FineTune mutated the stolen model")
		}
	}
}

func TestFineTuneImprovesWithMoreData(t *testing.T) {
	train, test := task(4, 160, 64, 8)
	m := zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(9))
	// Give the attacker an undertrained starting point so fine-tuning matters.
	core.TrainModel(m, train.Subset(0.2, 1), nil, cfg(1))
	low := FineTune(m, train, test, FineTuneConfig{Fraction: 0.05, Train: cfg(2), SubsetSeed: 10})
	high := FineTune(m, train, test, FineTuneConfig{Fraction: 1.0, Train: cfg(2), SubsetSeed: 10})
	if high < low-0.1 {
		t.Fatalf("more data should not hurt: 5%% → %.2f, 100%% → %.2f", low, high)
	}
}

func TestCurveShape(t *testing.T) {
	train, test := task(4, 64, 32, 11)
	m := zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(12))
	fr := []float64{0.1, 0.5, 1.0}
	curve := Curve(m, train, test, fr, cfg(1), 13)
	if len(curve) != 3 {
		t.Fatalf("curve has %d points, want 3", len(curve))
	}
	for i, pt := range curve {
		if pt[0] != fr[i] {
			t.Fatalf("fraction %v at %d, want %v", pt[0], i, fr[i])
		}
		if pt[1] < 0 || pt[1] > 1 {
			t.Fatalf("accuracy %v out of range", pt[1])
		}
	}
}
