package tbnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPipelineOptionValidation(t *testing.T) {
	bad := []PipelineOption{
		WithArch("transformer"),
		WithDataset("imagenet"),
		WithDatasetSize(0, 10),
		WithClasses(1),
		WithEpochs(-1, 1, 1),
		WithEpochs(1, 0, 1),
		WithPruning(-0.1, 4),
		WithHyperparams(0, 1e-4),
		WithBatchSize(0),
		WithProgress(nil),
	}
	for i, opt := range bad {
		if _, err := NewPipeline(opt); !errors.Is(err, ErrBadOption) {
			t.Fatalf("option %d: err = %v, want ErrBadOption", i, err)
		}
	}
	if _, err := NewPipeline(); err != nil {
		t.Fatalf("defaults must be valid: %v", err)
	}
}

func TestPipelineRunAndServe(t *testing.T) {
	var mu sync.Mutex
	seen := map[Phase]int{}
	p, err := NewPipeline(
		WithArch("tiny-vgg"),
		WithDataset("c10"),
		WithSeed(7),
		WithDatasetSize(48, 24),
		WithEpochs(1, 1, 1),
		WithPruning(1.0, 1),
		WithProgress(func(ph Phase, epoch int) {
			mu.Lock()
			seen[ph]++
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TB.Finalized {
		t.Fatal("pipeline result is not finalized")
	}
	if res.VictimAcc < 0 || res.VictimAcc > 1 || res.TBAcc < 0 || res.TBAcc > 1 {
		t.Fatalf("accuracies out of range: %v, %v", res.VictimAcc, res.TBAcc)
	}
	for _, ph := range []Phase{PhaseVictim, PhaseTransfer, PhasePrune, PhaseFinalize} {
		if seen[ph] == 0 {
			t.Fatalf("no progress events for phase %s (saw %v)", ph, seen)
		}
	}

	// The finalized result deploys and serves through the facade.
	dep, err := Deploy(res.TB, RaspberryPi3(), []int{6, 3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(dep, WithWorkers(2), WithMaxBatch(4), WithMaxDelay(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	batch := res.Test.Batches(6, nil)[0]
	want, err := dep.Infer(batch.X)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*Tensor, 0, len(want))
	for _, single := range res.Test.Batches(1, nil)[:len(want)] {
		xs = append(xs, single.X)
	}
	got, err := srv.InferBatch(context.Background(), xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("served label %d != deployment label %d at %d", got[i], want[i], i)
		}
	}
	if st := srv.Stats(); st.Requests != int64(len(xs)) {
		t.Fatalf("stats requests = %d, want %d", st.Requests, len(xs))
	}
}

func TestPipelineHonoursContext(t *testing.T) {
	p, err := NewPipeline(
		WithArch("tiny-vgg"),
		WithDatasetSize(32, 16),
		WithEpochs(1, 1, 0),
		WithPruning(1.0, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run err = %v, want context.Canceled", err)
	}
}

func TestServeOptionValidation(t *testing.T) {
	if _, err := Serve(nil); !errors.Is(err, ErrBadOption) {
		t.Fatalf("nil deployment: err = %v, want ErrBadOption", err)
	}
	p, err := NewPipeline(WithArch("tiny-vgg"), WithDatasetSize(32, 16),
		WithEpochs(0, 1, 0), WithPruning(1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(res.TB, RaspberryPi3(), []int{1, 3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i, opt := range []ServeOption{
		WithWorkers(0), WithMaxBatch(0), WithMaxDelay(0), WithMaxDelay(-time.Second),
		WithQueueDepth(0),
	} {
		if _, err := Serve(dep, opt); !errors.Is(err, ErrBadOption) {
			t.Fatalf("option %d: err = %v, want ErrBadOption", i, err)
		}
	}
	srv, err := Serve(dep)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := srv.Infer(context.Background(), NewTensor(1, 3, 16, 16)); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("closed server err = %v, want ErrServerClosed", err)
	}
}

func TestDeploySentinelsThroughFacade(t *testing.T) {
	victim := BuildVGG(VGG18Config(4), NewRNG(1))
	tb := NewTwoBranch(victim, 2)
	if _, err := Deploy(tb, RaspberryPi3(), []int{1, 3, 16, 16}); !errors.Is(err, ErrNotFinalized) {
		t.Fatalf("unfinalized deploy err = %v, want ErrNotFinalized", err)
	}
	tb.Finalized = true
	if _, err := Deploy(tb, RaspberryPi3(), []int{1, 3}); !errors.Is(err, ErrShape) {
		t.Fatalf("bad shape deploy err = %v, want ErrShape", err)
	}
	// A custom cost model (the RegisterDevice embedding pattern) with a
	// 1-byte budget: nothing fits.
	small := CostModel{DeviceName: "tiny", REEFlops: 1e9, TEEFlops: 1e9,
		TransferRate: 1e9, SecureCapacity: 1}
	if _, err := Deploy(tb, small, []int{1, 3, 16, 16}); !errors.Is(err, ErrSecureMemory) {
		t.Fatalf("oversized deploy err = %v, want ErrSecureMemory", err)
	}
}
