package tbnet

import (
	"fmt"
	"time"

	"tbnet/internal/buildinfo"
	"tbnet/internal/obs"
	"tbnet/internal/serve"
)

// Version is the tbnet release version — what the binaries print for
// -version and what the daemon stamps into its tbnet_build_info metric.
const Version = buildinfo.Version

// Tracer records per-request span timelines — one span per served request,
// marking each lifecycle stage (ingress, queued, batched, ree, tee, pace,
// respond) — into a preallocated bounded ring, allocation-free in steady
// state. Hand one tracer to both the serving layer (WithTracing /
// WithServeTracing) and the HTTP daemon so a request's span is started at the
// socket and annotated by the worker that executes it. Read captured
// timelines back with Tracer.Snapshot; a nil *Tracer is valid everywhere and
// disables tracing.
type Tracer = obs.Tracer

// SpanData is one captured request timeline from a Tracer snapshot: the
// request id, routed model and node, total wall milliseconds, and the
// per-stage breakdown in the order the stages were recorded.
type SpanData = obs.SpanData

// SpanStageDur is one stage entry of a SpanData timeline.
type SpanStageDur = obs.StageDur

// NewTracer returns a Tracer whose ring holds the last capacity request
// spans (minimum 16). The ring is preallocated up front; recording wraps,
// overwriting the oldest spans, and never allocates.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// WithTracing records a span timeline for every fleet request into tr: queue
// wait, micro-batch assembly, the REE and TEE world costs, pacing, and the
// routed model and node. Share tr with the HTTP layer to extend the same
// spans from socket to socket. A nil tracer fails with ErrBadOption; simply
// omit the option to serve untraced.
func WithTracing(tr *Tracer) FleetOption {
	return func(o *fleetOptions) error {
		if tr == nil {
			return fmt.Errorf("%w: nil tracer", ErrBadOption)
		}
		o.cfg.Tracer = tr
		return nil
	}
}

// WithServeTracing is WithTracing for a single Server built with Serve: every
// request served by the pool records its stage timeline into tr.
func WithServeTracing(tr *Tracer) ServeOption {
	return func(c *serve.Config) error {
		if tr == nil {
			return fmt.Errorf("%w: nil tracer", ErrBadOption)
		}
		c.Tracer = tr
		return nil
	}
}

// TraceSnapshot returns the tracer's captured spans, newest first: every
// finished span whose wall time is at least minWall, up to max entries (0
// means no cap / no floor). It is Tracer.Snapshot re-exported for callers
// holding the facade type.
func TraceSnapshot(tr *Tracer, minWall time.Duration, max int) []SpanData {
	return tr.Snapshot(minWall, max)
}
