module tbnet

go 1.22
