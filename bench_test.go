package tbnet

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each regenerating the artifact end to end (train → transfer →
// prune → finalize → measure) at the micro scale, plus component benchmarks
// for the hot paths. A full-scale recorded run lives in EXPERIMENTS.md;
// regenerate it with `go run ./cmd/tbnet experiment all -scale full`.
//
// The artifact benchmarks report domain metrics via b.ReportMetric:
// accuracy points, memory-reduction ratios, and modeled latency ratios — the
// quantities whose *shape* the paper's results are judged by.

import (
	"strconv"
	"strings"
	"testing"

	"tbnet/internal/experiments"
	"tbnet/internal/tee"
)

func benchLab(seed uint64) *experiments.Lab {
	return experiments.NewLab(experiments.Config{Scale: experiments.MicroScale(), Seed: seed})
}

// skipInShort keeps the artifact-regeneration benchmarks out of CI's
// short-mode bench smoke run: each iteration trains full micro pipelines,
// which is too heavy for a per-commit gate.
func skipInShort(b *testing.B) {
	if testing.Short() {
		b.Skip("artifact benchmark skipped in short mode")
	}
}

// parsePct converts the report's "12.34%" cells back to numbers.
func parsePct(s string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		panic(err)
	}
	return v
}

// parseRatio converts the report's "2.45x" cells back to numbers.
func parseRatio(s string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		panic(err)
	}
	return v
}

// BenchmarkTable1 regenerates Table 1 (victim/TBNet/attack accuracy and the
// protection gap) across the four architecture×dataset combinations.
func BenchmarkTable1(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		lab := benchLab(uint64(i + 1))
		t := lab.Table1()
		var gap float64
		for _, r := range t.Rows {
			gap += parsePct(r[5])
		}
		b.ReportMetric(gap/float64(len(t.Rows)), "gap-pts")
	}
}

// BenchmarkFig2 regenerates Fig. 2 (fine-tuning attack vs data availability).
func BenchmarkFig2(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		lab := benchLab(uint64(i + 1))
		series := lab.Fig2()
		// Metric: attacker accuracy at 100% data minus the TBNet reference
		// (negative = attacker stays below TBNet, the paper's claim).
		var last, ref float64
		for _, s := range series {
			pts := s.Points
			if strings.HasPrefix(s.Name, "fine-tuned") {
				last = pts[len(pts)-1][1]
			} else if ref == 0 {
				ref = pts[0][1]
			}
		}
		b.ReportMetric(100*(last-ref), "atk-minus-tbnet-pts")
	}
}

// BenchmarkTable2 regenerates Table 2 (best possible M_T alone vs TBNet).
func BenchmarkTable2(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		lab := benchLab(uint64(i + 1))
		t := lab.Table2()
		var drop float64
		for _, r := range t.Rows {
			drop += parsePct(r[3])
		}
		b.ReportMetric(drop/float64(len(t.Rows)), "mt-alone-drop-pts")
	}
}

// BenchmarkFig3 regenerates Fig. 3 (secure-memory usage baseline vs TBNet).
func BenchmarkFig3(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		lab := benchLab(uint64(i + 1))
		t := lab.Fig3()
		var ratio float64
		for _, r := range t.Rows {
			ratio += parseRatio(r[3])
		}
		b.ReportMetric(ratio/float64(len(t.Rows)), "mem-reduction-x")
	}
}

// BenchmarkTable3 regenerates Table 3 (inference latency baseline vs TBNet).
func BenchmarkTable3(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		lab := benchLab(uint64(i + 1))
		t := lab.Table3()
		var ratio float64
		for _, r := range t.Rows {
			ratio += parseRatio(r[3])
		}
		b.ReportMetric(ratio/float64(len(t.Rows)), "latency-reduction-x")
	}
}

// BenchmarkFig4 regenerates Fig. 4 (BN weight distributions after transfer).
func BenchmarkFig4(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		lab := benchLab(uint64(i + 1))
		mr, mt := lab.Fig4()
		b.ReportMetric(mr.Mean()-mt.Mean(), "gammaR-minus-gammaT")
	}
}

// BenchmarkAblation regenerates the prior-art strategy comparison.
func BenchmarkAblation(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		lab := benchLab(uint64(i + 1))
		t := lab.Ablation()
		if len(t.Rows) != 5 {
			b.Fatalf("ablation rows = %d", len(t.Rows))
		}
	}
}

// BenchmarkDeployedInference measures one single-image inference through the
// finalized two-branch deployment (REE stages + enclave invocations), the
// steady-state serving path.
func BenchmarkDeployedInference(b *testing.B) {
	skipInShort(b)
	lab := benchLab(1)
	p := lab.Pipeline(experiments.Combo{Arch: "vgg", Dataset: "c10"})
	device := tee.Unbounded(tee.RaspberryPi3())
	dep, err := Deploy(p.TB, device, []int{1, 3, 16, 16})
	if err != nil {
		b.Fatal(err)
	}
	x := NewTensor(1, 3, 16, 16)
	NewRNG(7).FillNormal(x, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Infer(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVictimInference measures the plain single-model forward pass for
// comparison with the deployed path.
func BenchmarkVictimInference(b *testing.B) {
	victim := BuildVGG(VGG18Config(10), NewRNG(3))
	x := NewTensor(1, 3, 16, 16)
	NewRNG(4).FillNormal(x, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim.Forward(x, false)
	}
}

// BenchmarkTwoBranchTrainStep measures one joint forward+backward+update on
// a batch — the knowledge-transfer inner loop.
func BenchmarkTwoBranchTrainStep(b *testing.B) {
	skipInShort(b)
	train, _ := GenerateDataset(SynthCIFAR10(32, 8, 5))
	victim := BuildVGG(VGG18Config(10), NewRNG(6))
	tb := NewTwoBranch(victim, 7)
	cfg := DefaultTrainConfig(1)
	cfg.BatchSize = 16
	cfg.LR = 0.01
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainTwoBranch(tb, train, nil, cfg)
	}
}
