package tbnet

import (
	"fmt"
	"io"

	"tbnet/internal/core"
	"tbnet/internal/registry"
	"tbnet/internal/serial"
	"tbnet/internal/tee"
)

// SaveDeployment writes a live deployment as a self-describing, checksummed
// artifact: the finalized two-branch weights and channel alignment plus the
// placement metadata (the device's registered name and the [N,C,H,W] sample
// shape the session was sized for). An int8 deployment is saved in the
// quantized artifact format — int8 weights and per-channel scales instead of
// the float32 tensors — and restores onto the int8 serving path. In both
// cases LoadDeployment brings the artifact back up bit-identically — a
// saved-then-loaded deployment produces exactly the labels the original
// would.
func SaveDeployment(w io.Writer, dep *Deployment) error {
	if dep == nil {
		return fmt.Errorf("%w: nil deployment", ErrBadOption)
	}
	return serial.SaveDeployment(w, artifactFor(dep))
}

// artifactFor snapshots a live deployment into its serialized form,
// dispatching on the deployment's precision.
func artifactFor(dep *Deployment) *serial.Artifact {
	art := &serial.Artifact{
		Precision:   string(dep.Precision()),
		Device:      dep.Device.Name(),
		SampleShape: dep.SampleShape(),
	}
	if dep.Precision() == core.PrecisionInt8 {
		art.QMR, art.QMT = dep.Quantized()
		art.Align = dep.Align()
	} else {
		art.TB = dep.Snapshot()
	}
	return art
}

// LoadDeployment reads an artifact written by SaveDeployment and re-deploys
// it: the artifact's payload checksum is verified, its device name is
// resolved in the backend registry, and the model is placed with the saved
// sample shape. Corrupt input fails with an error wrapping ErrBadArtifact;
// an artifact saved for a device this build does not register fails with
// ErrBadOption (re-target it with LoadDeploymentOn).
func LoadDeployment(r io.Reader) (*Deployment, error) {
	return LoadDeploymentOn(r, nil)
}

// LoadDeploymentOn is LoadDeployment re-targeted onto an explicit hardware
// backend, overriding the device name saved in the artifact (nil keeps the
// saved device). The weights are device-independent, so the restored outputs
// stay bit-identical; only the modeled cost changes.
func LoadDeploymentOn(r io.Reader, device Device) (*Deployment, error) {
	art, err := serial.LoadDeployment(r)
	if err != nil {
		return nil, fmt.Errorf("tbnet: loading deployment: %w", err)
	}
	return deployArtifact(art, device)
}

// deployArtifact places a parsed artifact onto device (nil resolves the
// artifact's saved device name).
func deployArtifact(art *serial.Artifact, device Device) (*Deployment, error) {
	if device == nil {
		d, err := tee.ByName(art.Device)
		if err != nil {
			return nil, fmt.Errorf("%w: artifact targets device %q: %w", ErrBadOption, art.Device, err)
		}
		device = d
	}
	var dep *Deployment
	var err error
	if art.Precision == string(core.PrecisionInt8) {
		dep, err = core.DeployQuantized(art.QMR, art.QMT, art.Align, device, art.SampleShape)
	} else {
		dep, err = core.Deploy(art.TB, device, art.SampleShape)
	}
	if err != nil {
		return nil, fmt.Errorf("tbnet: re-deploying artifact: %w", err)
	}
	return dep, nil
}

// RegistryEntry is one stored model's manifest: its name, the device and
// sample shape it was sized for, and the SHA-256 content hash Load verifies
// the artifact bytes against.
type RegistryEntry = registry.Entry

// Registry is a directory-backed named store of deployment artifacts — the
// vendor-ships-artifacts side of the paper's deployment story. Save persists
// a live deployment under a name; Load re-deploys it (integrity-checked);
// List enumerates the manifests. Open one with OpenRegistry. A Registry is
// safe for concurrent readers.
type Registry struct {
	store *registry.Store
}

// OpenRegistry opens (creating if needed) a model registry rooted at dir.
func OpenRegistry(dir string) (*Registry, error) {
	s, err := registry.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Registry{store: s}, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.store.Dir() }

// Save persists dep under name (overwriting a previous entry of that name)
// and returns the recorded manifest. Names are file-name-safe identifiers:
// letters, digits, '.', '_', '-'.
func (r *Registry) Save(name string, dep *Deployment) (RegistryEntry, error) {
	if dep == nil {
		return RegistryEntry{}, fmt.Errorf("%w: nil deployment", ErrBadOption)
	}
	return r.store.Save(name, artifactFor(dep))
}

// Load re-deploys the named entry on its saved device. The artifact bytes
// are verified against the manifest's content hash first: corruption fails
// with ErrIntegrity, a missing name with ErrModelNotFound.
func (r *Registry) Load(name string) (*Deployment, error) {
	return r.LoadOn(name, nil)
}

// LoadOn is Load re-targeted onto an explicit hardware backend (nil keeps
// the device recorded in the artifact).
func (r *Registry) LoadOn(name string, device Device) (*Deployment, error) {
	art, _, err := r.store.Load(name)
	if err != nil {
		return nil, err
	}
	return deployArtifact(art, device)
}

// Manifest returns the named entry's manifest without loading the artifact.
func (r *Registry) Manifest(name string) (RegistryEntry, error) {
	return r.store.Manifest(name)
}

// List returns every entry's manifest, sorted by name.
func (r *Registry) List() ([]RegistryEntry, error) { return r.store.List() }

// Delete removes the named entry; a missing name fails with
// ErrModelNotFound.
func (r *Registry) Delete(name string) error { return r.store.Delete(name) }
