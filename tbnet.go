// Package tbnet is the public API of the TBNet reproduction — a neural
// architectural defense framework that protects DNN models deployed on edge
// devices with a Trusted Execution Environment (DAC 2024).
//
// TBNet replaces a well-trained victim model with a two-branch substitution:
// the unsecured branch M_R runs in the rich execution environment (REE) and
// the secure branch M_T runs inside the TEE, connected by one-way
// (REE→TEE) feature-map transfers. Knowledge transfer, iterative two-branch
// pruning, and rollback finalization yield a deployment whose REE-resident
// part is useless to steal, while the TEE part is small and fast.
//
// The API is error-first and option-based. The six-step TBNet flow (train
// victim → two-branch substitution → knowledge transfer → iterative pruning
// → rollback finalization) is driven by the pipeline builder:
//
//	p, err := tbnet.NewPipeline(
//		tbnet.WithArch("vgg"),
//		tbnet.WithDataset("c10"),
//		tbnet.WithSeed(1),
//	)
//	res, err := p.Run(ctx)        // res.TB is finalized
//
// A finalized model deploys onto a simulated hardware backend — the API's
// third pillar, a Device cost model from the named registry — and is served
// concurrently by a pool of replicated enclave sessions with micro-batching:
//
//	device, err := tbnet.DeviceByName("rpi3") // or sgx-desktop, sev-server, jetson-tz
//	dep, err := tbnet.Deploy(res.TB, device, []int{1, 3, 16, 16})
//	srv, err := tbnet.Serve(dep, tbnet.WithWorkers(4), tbnet.WithMaxBatch(8))
//	defer srv.Close()
//
//	label, err := srv.Infer(ctx, x)       // single sample, coalesced
//	labels, err := srv.InferBatch(ctx, xs)
//	stats := srv.Stats()                  // device, throughput, batch sizes, p50/p99
//
// Each backend owns its own REE/TEE overlap semantics through the
// Device.Latency hook (the paper's rpi3 serializes the worlds; sgx-desktop
// runs them in parallel but pays EPC paging; jetson-tz overlaps a GPU-class
// REE with a CPU-class TEE). Custom cost models embed CostModel and join the
// registry with RegisterDevice.
//
// For heterogeneous serving, NewFleet fans one deployment out across several
// backends — one replicated pool per attached device — routing every request
// through a pluggable RoutingPolicy (RoundRobin, LeastLoaded, CostAware) with
// deadline- and capacity-based admission control that sheds excess load with
// ErrOverloaded:
//
//	f, err := tbnet.NewFleet(dep,
//		tbnet.WithDevice("rpi3", 2), tbnet.WithDevice("sgx-desktop", 4),
//		tbnet.WithPolicy(tbnet.CostAware()), tbnet.WithDeadline(50*time.Millisecond))
//	label, err := f.Infer(ctx, x)
//	stats := f.Stats() // per-device + fleet-wide p50/p95/p99, shed, routing
//
// Bad input surfaces as wrapped sentinel errors (ErrShape, ErrNotFinalized,
// ErrSecureMemory, ErrServerClosed, ErrBadOption) that callers match with
// errors.Is — public entry points do not panic.
//
// The step-level functions below (TrainModel, NewTwoBranch, TrainTwoBranch,
// PruneTwoBranch, FinalizeRollback, ...) remain available as the advanced
// surface the pipeline builder composes; use them when a workflow needs to
// intercept the flow between steps. Everything underneath — the
// tensor/NN/optimizer stack, the synthetic CIFAR-like datasets, the
// TrustZone device model, the attacks, and the experiment harness that
// regenerates the paper's tables and figures — lives in the internal
// packages and is re-exported here where a downstream user needs it.
package tbnet

import (
	"fmt"
	"io"

	"tbnet/internal/attack"
	"tbnet/internal/core"
	"tbnet/internal/data"
	"tbnet/internal/serial"
	"tbnet/internal/tee"
	"tbnet/internal/tensor"
	"tbnet/internal/zoo"
)

// Re-exported model and training types.
type (
	// Model is a staged CNN (the victim, or one TBNet branch).
	Model = zoo.Model
	// VGGConfig configures a VGG-style plain network.
	VGGConfig = zoo.VGGConfig
	// ResNetConfig configures a CIFAR-style ResNet.
	ResNetConfig = zoo.ResNetConfig
	// TwoBranch is TBNet's two-branch substitution model.
	TwoBranch = core.TwoBranch
	// TrainConfig carries optimization hyperparameters.
	TrainConfig = core.TrainConfig
	// PruneConfig controls the iterative two-branch pruning (Alg. 1).
	PruneConfig = core.PruneConfig
	// PruneResult is the pruning outcome, consumed by FinalizeRollback.
	PruneResult = core.PruneResult
	// Deployment is a finalized model placed on a simulated device.
	Deployment = core.Deployment
	// Dataset is an in-memory labeled image set.
	Dataset = data.Dataset
	// SynthConfig controls the procedural dataset generator.
	SynthConfig = data.SynthConfig
	// Device is the hardware-backend cost model a deployment is priced on:
	// identity, secure-memory capacity, per-world FLOPS rates, switch and
	// transfer costs, plus the Latency hook each backend implements with its
	// own REE/TEE overlap semantics. Built-ins are addressable by name
	// through DeviceByName; user-defined cost models join via RegisterDevice.
	Device = tee.Device
	// CostModel is a concrete serialized-worlds Device — the parameter block
	// custom backends embed (overriding Latency for different overlap
	// semantics) before registering themselves with RegisterDevice.
	CostModel = tee.CostModel
	// DeviceModel is the pre-registry name for the device cost model.
	//
	// Deprecated: use Device. DeviceModel survives as an alias so call sites
	// written against the PR 1 surface keep compiling.
	DeviceModel = tee.Device
	// Meter accumulates the per-world compute, world-switch, and transfer
	// costs of a workload; a Device's Latency hook converts it to modeled
	// seconds. Custom backends read it through Flops/Switches/
	// TransferredBytes/SecureFootprint.
	Meter = tee.Meter
	// World identifies an execution world of a device (REE or TEE).
	World = tee.World
	// RNG is the deterministic random generator used throughout.
	RNG = tensor.RNG
	// Tensor is the dense float32 tensor type.
	Tensor = tensor.Tensor
	// FineTuneConfig configures the fine-tuning attack.
	FineTuneConfig = attack.FineTuneConfig
)

// Execution worlds of a device, for reading a Meter's per-world costs.
const (
	// REE is the rich execution environment (normal world).
	REE = tee.REE
	// TEE is the trusted execution environment (secure world).
	TEE = tee.TEE
)

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// NewTensor returns a zero-filled tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// VGG18Config returns the reproduction's VGG-style configuration.
func VGG18Config(classes int) VGGConfig { return zoo.VGG18Config(classes) }

// ResNet20Config returns the reproduction's ResNet-20 configuration.
func ResNet20Config(classes int) ResNetConfig { return zoo.ResNet20Config(classes) }

// BuildVGG constructs a VGG-style staged model.
func BuildVGG(cfg VGGConfig, rng *RNG) *Model { return zoo.BuildVGG(cfg, rng) }

// BuildResNet constructs a ResNet staged model (withSkip=false builds the
// plain-chain variant).
func BuildResNet(cfg ResNetConfig, withSkip bool, rng *RNG) *Model {
	return zoo.BuildResNet(cfg, withSkip, rng)
}

// MobileNetConfig configures a MobileNet-style depthwise-separable network.
type MobileNetConfig = zoo.MobileNetConfig

// MobileNetSConfig returns the small MobileNet configuration.
func MobileNetSConfig(classes int) MobileNetConfig { return zoo.MobileNetSConfig(classes) }

// BuildMobileNet constructs a MobileNet-style staged model.
func BuildMobileNet(cfg MobileNetConfig, rng *RNG) *Model { return zoo.BuildMobileNet(cfg, rng) }

// SynthCIFAR10 returns the 10-class synthetic dataset configuration.
func SynthCIFAR10(train, test int, seed uint64) SynthConfig {
	return data.SynthCIFAR10(train, test, seed)
}

// SynthCIFAR100 returns the 100-class synthetic dataset configuration.
func SynthCIFAR100(train, test int, seed uint64) SynthConfig {
	return data.SynthCIFAR100(train, test, seed)
}

// GenerateDataset builds train and test splits from a SynthConfig.
func GenerateDataset(cfg SynthConfig) (train, test *Dataset) { return data.Generate(cfg) }

// DefaultTrainConfig returns the paper's hyperparameters (SGD 0.1/0.9/1e-4,
// λ=1e-4, lr ×0.1 every 100 epochs) for the given epoch budget.
func DefaultTrainConfig(epochs int) TrainConfig { return core.DefaultTrainConfig(epochs) }

// TrainModel trains a standalone model with cross-entropy.
func TrainModel(m *Model, train, test *Dataset, cfg TrainConfig) core.History {
	return core.TrainModel(m, train, test, cfg)
}

// EvaluateModel returns a model's top-1 test accuracy.
func EvaluateModel(m *Model, d *Dataset, batchSize int) float64 {
	return core.EvaluateModel(m, d, batchSize)
}

// NewTwoBranch performs TBNet step 1: victim → unsecured branch M_R, fresh
// secure branch M_T with the victim's architecture.
func NewTwoBranch(victim *Model, seed uint64) *TwoBranch { return core.NewTwoBranch(victim, seed) }

// TrainTwoBranch performs step 2 (knowledge transfer under Eq. 1).
func TrainTwoBranch(tb *TwoBranch, train, test *Dataset, cfg TrainConfig) core.History {
	return core.TrainTwoBranch(tb, train, test, cfg)
}

// EvaluateTwoBranch returns the benign-user accuracy (M_T's output).
func EvaluateTwoBranch(tb *TwoBranch, d *Dataset, batchSize int) float64 {
	return core.EvaluateTwoBranch(tb, d, batchSize)
}

// DefaultPruneConfig returns Alg. 1's settings (p=10%) for a drop budget.
func DefaultPruneConfig(dropBudget float64, fineTuneEpochs int) PruneConfig {
	return core.DefaultPruneConfig(dropBudget, fineTuneEpochs)
}

// PruneTwoBranch performs steps 3–5 (iterative two-branch pruning).
func PruneTwoBranch(tb *TwoBranch, train, test *Dataset, cfg PruneConfig) *PruneResult {
	return core.PruneTwoBranch(tb, train, test, cfg)
}

// FinalizeRollback performs step 6 (architectural divergence via rollback).
func FinalizeRollback(tb *TwoBranch, res *PruneResult) { core.FinalizeRollback(tb, res) }

// Devices returns every registered hardware backend, sorted by name. The
// built-ins are "rpi3" (the paper's testbed: TrustZone with serialized
// worlds), "sgx-desktop" (parallel worlds with an EPC paging penalty),
// "sev-server" (confidential-VM: large secure memory, heavyweight exits),
// and "jetson-tz" (GPU-class REE overlapping a CPU-class TEE).
func Devices() []Device { return tee.Devices() }

// DeviceByName returns the registered backend with the given name. Unknown
// names fail with an error wrapping ErrBadOption that lists the registered
// names.
func DeviceByName(name string) (Device, error) {
	d, err := tee.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadOption, err)
	}
	return d, nil
}

// RegisterDevice adds a user-defined device cost model under its Name, making
// it addressable by DeviceByName and included in Devices (and therefore in
// the cross-device experiment artifacts). Duplicate or empty names, and
// non-positive FLOPS or transfer rates, fail with an error wrapping
// ErrBadOption.
func RegisterDevice(d Device) error {
	if err := tee.Register(d); err != nil {
		return fmt.Errorf("%w: %w", ErrBadOption, err)
	}
	return nil
}

// Unbounded returns d in measurement mode: identical cost semantics with the
// secure-memory capacity check lifted, so deployments report their footprint
// instead of failing with ErrSecureMemory.
func Unbounded(d Device) Device { return tee.Unbounded(d) }

// RaspberryPi3 returns the cost model of the paper's testbed — the registered
// "rpi3" backend.
func RaspberryPi3() Device { return tee.RaspberryPi3() }

// Deploy places a finalized model onto a simulated device.
func Deploy(tb *TwoBranch, device Device, sampleShape []int) (*Deployment, error) {
	return core.Deploy(tb, device, sampleShape)
}

// Precision names a deployment's numeric serving path: float32 (the default)
// or post-training-quantized int8.
type Precision = core.Precision

// The two serving precisions.
const (
	// PrecisionF32 is the float32 reference path.
	PrecisionF32 = core.PrecisionF32
	// PrecisionInt8 is the quantized path: int8 weights with per-channel
	// scales, integer matmuls, float32 requantization at layer boundaries.
	PrecisionInt8 = core.PrecisionInt8
)

// ParsePrecision resolves a user-facing precision name ("f32", "fp32",
// "float32", "int8", "i8", or empty for the default) to a Precision; unknown
// names fail with an error wrapping ErrShape.
func ParsePrecision(s string) (Precision, error) { return core.ParsePrecision(s) }

// DeployInt8 quantizes a finalized model (symmetric per-output-channel int8
// weights) and places it onto a simulated device on the int8 serving path:
// integer convolutions and matmuls priced at the backend's int8 throughput
// ratio, with a secure-memory footprint computed from the quantized working
// set. Accuracy typically tracks the f32 deployment within a label flip on
// near-ties; latency is strictly lower on every built-in backend.
func DeployInt8(tb *TwoBranch, device Device, sampleShape []int) (*Deployment, error) {
	return core.DeployInt8(tb, device, sampleShape)
}

// AttackDirectUse evaluates a stolen M_R as a standalone classifier.
func AttackDirectUse(stolen *Model, test *Dataset, batchSize int) float64 {
	return attack.DirectUse(stolen, test, batchSize)
}

// AttackFineTune retrains a copy of the stolen branch on a data fraction and
// returns its test accuracy.
func AttackFineTune(stolen *Model, train, test *Dataset, cfg FineTuneConfig) float64 {
	return attack.FineTune(stolen, train, test, cfg)
}

// SaveModel writes a model in the binary deployment format.
func SaveModel(w io.Writer, m *Model) error { return serial.SaveModel(w, m) }

// LoadModel reads a model written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return serial.LoadModel(r) }

// SaveTwoBranch writes a (typically finalized) two-branch model.
func SaveTwoBranch(w io.Writer, tb *TwoBranch) error { return serial.SaveTwoBranch(w, tb) }

// LoadTwoBranch reads a two-branch model written by SaveTwoBranch.
func LoadTwoBranch(r io.Reader) (*TwoBranch, error) { return serial.LoadTwoBranch(r) }
