package tbnet

// Integration tests through the public facade: the API a downstream user
// sees, exercised end to end.

import (
	"bytes"
	"testing"
)

func facadeCfg(epochs int) TrainConfig {
	cfg := DefaultTrainConfig(epochs)
	cfg.BatchSize = 16
	cfg.LR = 0.05
	return cfg
}

// buildFinalized runs the full public-API flow once and is shared by the
// integration tests below.
func buildFinalized(t *testing.T) (*TwoBranch, *Model, *Dataset, *Dataset) {
	t.Helper()
	train, test := GenerateDataset(SynthCIFAR10(96, 48, 1))
	victim := BuildVGG(VGG18Config(train.Classes), NewRNG(2))
	TrainModel(victim, train, nil, facadeCfg(3))

	tb := NewTwoBranch(victim, 3)
	transfer := facadeCfg(2)
	transfer.Lambda = 5e-4
	TrainTwoBranch(tb, train, test, transfer)

	prune := DefaultPruneConfig(1.0, 1)
	prune.MaxIters = 2
	prune.FineTune = facadeCfg(1)
	res := PruneTwoBranch(tb, train, test, prune)
	FinalizeRollback(tb, res)
	return tb, victim, train, test
}

func TestFacadeEndToEnd(t *testing.T) {
	tb, victim, train, test := buildFinalized(t)
	if !tb.Finalized {
		t.Fatal("pipeline did not finalize")
	}
	vAcc := EvaluateModel(victim, test, 16)
	tbAcc := EvaluateTwoBranch(tb, test, 16)
	if vAcc < 0 || vAcc > 1 || tbAcc < 0 || tbAcc > 1 {
		t.Fatalf("accuracies out of range: %v, %v", vAcc, tbAcc)
	}

	dep, err := Deploy(tb, RaspberryPi3(), []int{4, 3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	batch := test.Batches(4, nil)[0]
	labels, err := dep.Infer(batch.X)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 4 {
		t.Fatalf("labels = %v", labels)
	}

	// Attacks run through the facade too.
	atk := AttackDirectUse(dep.ExtractedMR(), test, 16)
	if atk < 0 || atk > 1 {
		t.Fatalf("attack accuracy %v out of range", atk)
	}
	ft := AttackFineTune(dep.ExtractedMR(), train, test, FineTuneConfig{
		Fraction: 0.5, Train: facadeCfg(1), SubsetSeed: 4,
	})
	if ft < 0 || ft > 1 {
		t.Fatalf("fine-tune accuracy %v out of range", ft)
	}
}

func TestFacadeSerializationRoundTrip(t *testing.T) {
	tb, _, _, test := buildFinalized(t)
	var buf bytes.Buffer
	if err := SaveTwoBranch(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTwoBranch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded deployment must classify identically.
	want := EvaluateTwoBranch(tb, test, 16)
	have := EvaluateTwoBranch(got, test, 16)
	if want != have {
		t.Fatalf("round-trip accuracy %v != %v", have, want)
	}
	// And must still deploy.
	if _, err := Deploy(got, RaspberryPi3(), []int{1, 3, 16, 16}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeModelSaveLoad(t *testing.T) {
	victim := BuildResNet(ResNet20Config(10), true, NewRNG(5))
	var buf bytes.Buffer
	if err := SaveModel(&buf, victim); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := NewTensor(1, 3, 16, 16)
	NewRNG(6).FillNormal(x, 0, 1)
	a := victim.Forward(x.Clone(), false)
	b := got.Forward(x.Clone(), false)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("loaded model diverges")
		}
	}
}
