package tbnet

import (
	"errors"

	"tbnet/internal/core"
	"tbnet/internal/fleet"
	"tbnet/internal/httpd"
	"tbnet/internal/registry"
	"tbnet/internal/serial"
	"tbnet/internal/serve"
)

// Sentinel errors of the public API. Match them with errors.Is; every error
// returned by the package wraps one of these (or carries call-site context
// around it) rather than panicking on bad input.
var (
	// ErrShape reports an input tensor or sample shape that is incompatible
	// with the model or deployment it was given to.
	ErrShape = core.ErrShape

	// ErrNotFinalized reports an operation (Deploy, Serve) on a two-branch
	// model that has not been finalized with rollback (step 6).
	ErrNotFinalized = core.ErrNotFinalized

	// ErrSecureMemory reports a deployment whose secure branch does not fit
	// in the device's secure-memory budget.
	ErrSecureMemory = core.ErrSecureMemory

	// ErrServerClosed reports an inference issued to a closed Server or
	// Fleet.
	ErrServerClosed = serve.ErrClosed

	// ErrOverloaded reports a fleet request shed by admission control: the
	// fleet-wide in-flight cap was reached, or the per-request deadline
	// expired before a device answered.
	ErrOverloaded = fleet.ErrOverloaded

	// ErrDraining reports a fleet request refused because Drain has begun:
	// the fleet is finishing its admitted work before closing and accepts
	// nothing new. Over HTTP this maps to 503 with a Retry-After hint.
	ErrDraining = fleet.ErrDraining

	// ErrRateLimited reports an HTTP request refused by the daemon's
	// per-tenant token bucket before it reached the fleet. Over HTTP this
	// maps to 429 with a Retry-After hint.
	ErrRateLimited = httpd.ErrRateLimited

	// ErrBadOption reports an invalid value passed to a functional option of
	// NewPipeline or Serve.
	ErrBadOption = errors.New("tbnet: invalid option")

	// ErrUnknownModel reports an inference or swap addressed to a model name
	// the Server or Fleet does not host.
	ErrUnknownModel = serve.ErrUnknownModel

	// ErrModelExists reports an AddModel under a name already hosted (use
	// SwapModel to replace a hosted model).
	ErrModelExists = serve.ErrModelExists

	// ErrBadArtifact reports a corrupt, truncated, or checksum-failing
	// persisted artifact (SaveDeployment/LoadDeployment, SaveModel/...).
	ErrBadArtifact = serial.ErrBadFormat

	// ErrModelNotFound reports a Registry load of a name the store does not
	// hold.
	ErrModelNotFound = registry.ErrNotFound

	// ErrIntegrity reports a Registry artifact whose on-disk bytes no longer
	// match the content hash recorded in its manifest.
	ErrIntegrity = registry.ErrIntegrity
)
