package tbnet

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tbnet/internal/core"
	"tbnet/internal/zoo"
)

// finalizedDeployment builds a small deployed model without the training
// pipeline (persistence is weight-agnostic).
func finalizedDeployment(t testing.TB, seed uint64) *Deployment {
	t.Helper()
	victim := zoo.BuildVGG(zoo.TinyVGGConfig(4), NewRNG(seed))
	tb := core.NewTwoBranch(victim, seed+1)
	tb.Finalized = true
	dep, err := Deploy(tb, RaspberryPi3(), []int{1, 3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func probeInputs(n int, seed uint64) []*Tensor {
	rng := NewRNG(seed)
	xs := make([]*Tensor, n)
	for i := range xs {
		xs[i] = NewTensor(1, 3, 16, 16)
		rng.FillNormal(xs[i], 0, 1)
	}
	return xs
}

// TestSaveLoadDeploymentBitIdentical: the facade round trip restores the
// saved device, shape, and exact inference function.
func TestSaveLoadDeploymentBitIdentical(t *testing.T) {
	dep := finalizedDeployment(t, 1)
	var buf bytes.Buffer
	if err := SaveDeployment(&buf, dep); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDeployment(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Device.Name() != "rpi3" {
		t.Fatalf("restored device %q, want rpi3", loaded.Device.Name())
	}
	for i, x := range probeInputs(8, 2) {
		want, err := dep.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		if want[0] != got[0] {
			t.Fatalf("input %d: loaded label %d, original %d", i, got[0], want[0])
		}
	}
}

// TestLoadDeploymentOnRetargets: the device override changes the cost model,
// not the function.
func TestLoadDeploymentOnRetargets(t *testing.T) {
	dep := finalizedDeployment(t, 3)
	var buf bytes.Buffer
	if err := SaveDeployment(&buf, dep); err != nil {
		t.Fatal(err)
	}
	jet, err := DeviceByName("jetson-tz")
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDeploymentOn(bytes.NewReader(buf.Bytes()), jet)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Device.Name() != "jetson-tz" {
		t.Fatalf("device = %q, want jetson-tz", loaded.Device.Name())
	}
	x := probeInputs(1, 4)[0]
	want, err := dep.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if want[0] != got[0] {
		t.Fatalf("retargeted label %d, want %d", got[0], want[0])
	}
}

// TestLoadDeploymentRejectsCorruption: the facade surfaces ErrBadArtifact.
func TestLoadDeploymentRejectsCorruption(t *testing.T) {
	dep := finalizedDeployment(t, 5)
	var buf bytes.Buffer
	if err := SaveDeployment(&buf, dep); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 1
	if _, err := LoadDeployment(bytes.NewReader(data)); !errors.Is(err, ErrBadArtifact) {
		t.Fatalf("err = %v, want ErrBadArtifact", err)
	}
}

// TestRegistryRoundTripAndIntegrity: the facade registry saves, lists,
// reloads, and detects tampering.
func TestRegistryRoundTripAndIntegrity(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	dep := finalizedDeployment(t, 6)
	entry, err := reg.Save("prod", dep)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Name != "prod" || entry.Device != "rpi3" {
		t.Fatalf("entry = %+v", entry)
	}
	entries, err := reg.List()
	if err != nil || len(entries) != 1 {
		t.Fatalf("List = %v, %v", entries, err)
	}
	loaded, err := reg.Load("prod")
	if err != nil {
		t.Fatal(err)
	}
	x := probeInputs(1, 7)[0]
	want, _ := dep.Infer(x)
	got, err := loaded.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if want[0] != got[0] {
		t.Fatalf("registry label %d, want %d", got[0], want[0])
	}
	if _, err := reg.Load("ghost"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("missing load err = %v", err)
	}

	// Tamper with the stored artifact: Load must refuse with ErrIntegrity.
	path := filepath.Join(dir, "prod.tbd")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("prod"); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered load err = %v, want ErrIntegrity", err)
	}
}

// TestFacadeMultiModelFleetWithSwap: WithModel + InferModel + SwapModel
// through the public API.
func TestFacadeMultiModelFleetWithSwap(t *testing.T) {
	depA := finalizedDeployment(t, 10)
	depB := finalizedDeployment(t, 11)
	depC := finalizedDeployment(t, 12)
	f, err := NewFleet(depA,
		WithDevice("rpi3", 1),
		WithModel("beta", depB),
		WithPolicy(RoundRobin()),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	xs := probeInputs(6, 13)
	wantC := make([]int, len(xs))
	for i, x := range xs {
		labels, err := depC.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		wantC[i] = labels[0]
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := f.InferModel(ctx, "beta", xs[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.SwapModel("beta", depC); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		got, err := f.InferModel(ctx, "beta", x)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantC[i] {
			t.Fatalf("post-swap beta label[%d] = %d, want %d", i, got, wantC[i])
		}
	}
	st := f.Stats()
	if len(st.Models) != 2 {
		t.Fatalf("fleet stats models = %+v", st.Models)
	}
	var betaSwaps int64
	for _, m := range st.Models {
		if m.Name == "beta" {
			betaSwaps = m.Swaps
		}
	}
	if betaSwaps != 1 {
		t.Fatalf("beta swaps = %d, want 1", betaSwaps)
	}
}
