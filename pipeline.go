package tbnet

import (
	"context"
	"fmt"
	"io"

	"tbnet/internal/core"
	"tbnet/internal/data"
	"tbnet/internal/tensor"
	"tbnet/internal/zoo"
)

// Phase identifies one stage of the TBNet pipeline for progress reporting.
type Phase string

// The pipeline's phases, in execution order. PhasePrune covers the whole
// iterative prune/fine-tune/evaluate loop of Alg. 1.
const (
	PhaseVictim   Phase = "victim"
	PhaseTransfer Phase = "transfer"
	PhasePrune    Phase = "prune"
	PhaseFinalize Phase = "finalize"
)

// PipelineOption configures a Pipeline. Options validate eagerly: NewPipeline
// returns the first option error, wrapped around ErrBadOption.
type PipelineOption func(*Pipeline) error

// Pipeline is the composable builder over TBNet's six-step flow: train the
// victim, build the two-branch substitution, transfer knowledge, prune
// iteratively, and finalize with rollback. Construct with NewPipeline, then
// call Run.
type Pipeline struct {
	arch     string
	dataset  string
	seed     uint64
	log      io.Writer
	progress func(Phase, int)

	trainN, testN  int
	classes        int // 0: dataset default
	victimEpochs   int
	transferEpochs int
	fineTuneEpochs int
	pruneIters     int
	dropBudget     float64
	batchSize      int
	lr             float64
	lambda         float64
}

// WithArch selects the victim architecture: "vgg", "resnet", "mobilenet",
// or the CI-scale "tiny-vgg" / "tiny-resnet" variants (default "vgg").
func WithArch(arch string) PipelineOption {
	return func(p *Pipeline) error {
		switch arch {
		case "vgg", "resnet", "mobilenet", "tiny-vgg", "tiny-resnet":
			p.arch = arch
			return nil
		default:
			return fmt.Errorf("%w: unknown architecture %q", ErrBadOption, arch)
		}
	}
}

// WithDataset selects the synthetic task: "c10" (CIFAR-10-like) or "c100"
// (CIFAR-100-like; default "c10").
func WithDataset(name string) PipelineOption {
	return func(p *Pipeline) error {
		switch name {
		case "c10", "c100":
			p.dataset = name
			return nil
		default:
			return fmt.Errorf("%w: unknown dataset %q (want c10 or c100)", ErrBadOption, name)
		}
	}
}

// WithSeed sets the master seed; every random decision in the pipeline
// derives deterministically from it (default 1).
func WithSeed(seed uint64) PipelineOption {
	return func(p *Pipeline) error {
		p.seed = seed
		return nil
	}
}

// WithLogger directs per-epoch textual progress to w.
func WithLogger(w io.Writer) PipelineOption {
	return func(p *Pipeline) error {
		p.log = w
		return nil
	}
}

// WithProgress installs a callback invoked as the pipeline advances: once
// per completed epoch of the victim, transfer, and pruning fine-tune loops
// (epoch is the zero-based index within the phase), and once with epoch -1
// when a phase completes.
func WithProgress(fn func(phase Phase, epoch int)) PipelineOption {
	return func(p *Pipeline) error {
		if fn == nil {
			return fmt.Errorf("%w: nil progress callback", ErrBadOption)
		}
		p.progress = fn
		return nil
	}
}

// WithDatasetSize sets the synthetic train/test sample counts (default
// 120/60).
func WithDatasetSize(train, test int) PipelineOption {
	return func(p *Pipeline) error {
		if train < 1 || test < 1 {
			return fmt.Errorf("%w: dataset size %d/%d must be positive", ErrBadOption, train, test)
		}
		p.trainN, p.testN = train, test
		return nil
	}
}

// WithClasses overrides the task's class count (default: 10 for c10, 12 for
// the CPU-scale c100 stand-in).
func WithClasses(n int) PipelineOption {
	return func(p *Pipeline) error {
		if n < 2 {
			return fmt.Errorf("%w: class count %d < 2", ErrBadOption, n)
		}
		p.classes = n
		return nil
	}
}

// WithEpochs sets the victim-training, knowledge-transfer, and per-iteration
// pruning fine-tune epoch budgets (default 8/10/1).
func WithEpochs(victim, transfer, fineTune int) PipelineOption {
	return func(p *Pipeline) error {
		if victim < 0 || transfer < 1 || fineTune < 0 {
			return fmt.Errorf("%w: epoch budgets %d/%d/%d", ErrBadOption, victim, transfer, fineTune)
		}
		p.victimEpochs, p.transferEpochs, p.fineTuneEpochs = victim, transfer, fineTune
		return nil
	}
}

// WithPruning sets the tolerated accuracy drop θ_drop and the maximum
// pruning iterations (default 0.20 / 4).
func WithPruning(dropBudget float64, maxIters int) PipelineOption {
	return func(p *Pipeline) error {
		if dropBudget < 0 || maxIters < 0 {
			return fmt.Errorf("%w: pruning budget %g / iters %d", ErrBadOption, dropBudget, maxIters)
		}
		p.dropBudget, p.pruneIters = dropBudget, maxIters
		return nil
	}
}

// WithHyperparams sets the learning rate and the BN sparsity strength λ of
// Eq. 1 (default 0.03 / 5e-4).
func WithHyperparams(lr, lambda float64) PipelineOption {
	return func(p *Pipeline) error {
		if lr <= 0 || lambda < 0 {
			return fmt.Errorf("%w: lr %g / lambda %g", ErrBadOption, lr, lambda)
		}
		p.lr, p.lambda = lr, lambda
		return nil
	}
}

// WithBatchSize sets the training batch size (default 16).
func WithBatchSize(n int) PipelineOption {
	return func(p *Pipeline) error {
		if n < 1 {
			return fmt.Errorf("%w: batch size %d < 1", ErrBadOption, n)
		}
		p.batchSize = n
		return nil
	}
}

// NewPipeline builds a pipeline from CPU-scale defaults (a VGG victim on the
// 10-class synthetic task, CI-sized budgets) modified by opts. It fails fast
// on the first invalid option.
func NewPipeline(opts ...PipelineOption) (*Pipeline, error) {
	p := &Pipeline{
		arch:           "vgg",
		dataset:        "c10",
		seed:           1,
		trainN:         120,
		testN:          60,
		victimEpochs:   8,
		transferEpochs: 10,
		fineTuneEpochs: 1,
		pruneIters:     4,
		dropBudget:     0.20,
		batchSize:      16,
		lr:             0.03,
		lambda:         5e-4,
	}
	for _, opt := range opts {
		if err := opt(p); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// PipelineResult is the outcome of one pipeline run. TB is finalized and
// ready for Deploy.
type PipelineResult struct {
	// Train and Test are the synthetic dataset splits the run used.
	Train, Test *Dataset
	// Victim is the trained victim model (step 0 of the paper's flow).
	Victim *Model
	// VictimAcc is the victim's top-1 test accuracy.
	VictimAcc float64
	// TB is the finalized two-branch substitution model.
	TB *TwoBranch
	// TBAcc is the benign-user accuracy of the two-branch model (M_T head).
	TBAcc float64
	// PruneRes records the iterative pruning history behind TB.
	PruneRes *PruneResult
}

func (p *Pipeline) logf(format string, args ...any) {
	if p.log != nil {
		fmt.Fprintf(p.log, format, args...)
	}
}

func (p *Pipeline) emit(phase Phase, epoch int) {
	if p.progress != nil {
		p.progress(phase, epoch)
	}
}

func (p *Pipeline) datasets() (train, test *Dataset) {
	var cfg data.SynthConfig
	if p.dataset == "c100" {
		cfg = data.SynthCIFAR100(p.trainN, p.testN, p.seed+100)
		cfg.Classes = 12 // CPU-scale stand-in for the 100-class task
	} else {
		cfg = data.SynthCIFAR10(p.trainN, p.testN, p.seed+10)
	}
	if p.classes > 0 {
		cfg.Classes = p.classes
	}
	return data.Generate(cfg)
}

func (p *Pipeline) buildVictim(classes int) *Model {
	rng := tensor.NewRNG(p.seed + 1)
	switch p.arch {
	case "resnet":
		return zoo.BuildResNet(zoo.ResNet20Config(classes), true, rng)
	case "tiny-resnet":
		return zoo.BuildResNet(zoo.TinyResNetConfig(classes), true, rng)
	case "mobilenet":
		return zoo.BuildMobileNet(zoo.MobileNetSConfig(classes), rng)
	case "tiny-vgg":
		return zoo.BuildVGG(zoo.TinyVGGConfig(classes), rng)
	default:
		return zoo.BuildVGG(zoo.VGG18Config(classes), rng)
	}
}

func (p *Pipeline) trainCfg(phase Phase, epochs int, lambda float64, seed uint64) TrainConfig {
	cfg := core.DefaultTrainConfig(epochs)
	cfg.BatchSize = p.batchSize
	cfg.LR = p.lr
	cfg.Lambda = lambda
	cfg.Seed = seed
	cfg.Log = p.log
	if p.progress != nil {
		cfg.OnEpoch = func(epoch int, _ float64) { p.emit(phase, epoch) }
	}
	return cfg
}

// Run executes the six-step flow and returns a finalized result. It checks
// ctx between phases; a cancelled context aborts with ctx.Err().
func (p *Pipeline) Run(ctx context.Context) (*PipelineResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	train, test := p.datasets()
	res := &PipelineResult{Train: train, Test: test}

	p.logf("[pipeline %s/%s] training victim (%d epochs)\n", p.arch, p.dataset, p.victimEpochs)
	res.Victim = p.buildVictim(train.Classes)
	core.TrainModel(res.Victim, train, nil, p.trainCfg(PhaseVictim, p.victimEpochs, 0, p.seed+2))
	res.VictimAcc = core.EvaluateModel(res.Victim, test, p.batchSize)
	p.emit(PhaseVictim, -1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	p.logf("[pipeline %s/%s] knowledge transfer (%d epochs)\n", p.arch, p.dataset, p.transferEpochs)
	res.TB = core.NewTwoBranch(res.Victim, p.seed+3)
	core.TrainTwoBranch(res.TB, train, test,
		p.trainCfg(PhaseTransfer, p.transferEpochs, p.lambda, p.seed+4))
	p.emit(PhaseTransfer, -1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	p.logf("[pipeline %s/%s] iterative two-branch pruning (≤%d iters)\n",
		p.arch, p.dataset, p.pruneIters)
	pc := core.DefaultPruneConfig(p.dropBudget, p.fineTuneEpochs)
	pc.MaxIters = p.pruneIters
	pc.FineTune = p.trainCfg(PhasePrune, p.fineTuneEpochs, p.lambda, p.seed+5)
	pc.FineTune.LR = p.lr / 4
	res.PruneRes = core.PruneTwoBranch(res.TB, train, test, pc)
	p.emit(PhasePrune, -1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	core.FinalizeRollback(res.TB, res.PruneRes)
	res.TBAcc = core.EvaluateTwoBranch(res.TB, test, p.batchSize)
	p.emit(PhaseFinalize, -1)
	p.logf("[pipeline %s/%s] victim %.4f → TBNet %.4f (%d pruning iterations)\n",
		p.arch, p.dataset, res.VictimAcc, res.TBAcc, res.PruneRes.Iterations)
	return res, nil
}
