package tbnet

// Tests for the hardware-backend surface of the public API: the named device
// registry and the acceptance property that a non-rpi3 backend threads
// through Deploy and Serve and produces different modeled numbers.

import (
	"context"
	"errors"
	"testing"
	"time"
)

// finalizedForDevices builds a finalized two-branch model without training:
// device cost accounting depends only on the architecture and the staged
// protocol, not on learned weights.
func finalizedForDevices(t *testing.T) *TwoBranch {
	t.Helper()
	victim := BuildVGG(VGG18Config(4), NewRNG(41))
	tb := NewTwoBranch(victim, 42)
	tb.Finalized = true
	return tb
}

func TestDeviceByNameUnknownWrapsErrBadOption(t *testing.T) {
	if _, err := DeviceByName("abacus"); !errors.Is(err, ErrBadOption) {
		t.Fatalf("unknown device err = %v, want ErrBadOption", err)
	}
	d, err := DeviceByName("sgx-desktop")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "sgx-desktop" {
		t.Fatalf("device name = %q", d.Name())
	}
}

func TestRegisterDeviceValidation(t *testing.T) {
	cases := []struct {
		name string
		dev  Device
	}{
		{"nil device", nil},
		{"empty name", CostModel{}},
		{"zero rates", CostModel{DeviceName: "zero-rates"}},
		{"duplicate name", CostModel{DeviceName: "rpi3",
			REEFlops: 1e9, TEEFlops: 1e8, TransferRate: 1e6}},
	}
	for _, c := range cases {
		if err := RegisterDevice(c.dev); !errors.Is(err, ErrBadOption) {
			t.Fatalf("%s: err = %v, want ErrBadOption", c.name, err)
		}
	}
}

func TestRegisterDeviceRoundTrip(t *testing.T) {
	// A sane custom backend (TEE slower than REE) so the registry stays
	// consistent for the other tests sharing the process.
	custom := CostModel{
		DeviceName:     "facade-custom",
		REEFlops:       3e9,
		TEEFlops:       1e9,
		SwitchLatency:  50 * time.Microsecond,
		TransferRate:   2e8,
		SecureCapacity: 32 << 20,
	}
	if err := RegisterDevice(custom); err != nil {
		t.Fatal(err)
	}
	if err := RegisterDevice(custom); !errors.Is(err, ErrBadOption) {
		t.Fatalf("duplicate registration err = %v, want ErrBadOption", err)
	}
	got, err := DeviceByName("facade-custom")
	if err != nil {
		t.Fatal(err)
	}
	tb := finalizedForDevices(t)
	if _, err := Deploy(tb, got, []int{1, 3, 16, 16}); err != nil {
		t.Fatalf("deploying on the registered custom backend: %v", err)
	}
	found := false
	for _, d := range Devices() {
		if d.Name() == "facade-custom" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered backend missing from Devices()")
	}
}

// TestDeployAcrossBackendsDiffers is the acceptance property: a non-rpi3
// built-in passed to Deploy produces different modeled latency than rpi3 for
// the identical finalized model and input.
func TestDeployAcrossBackendsDiffers(t *testing.T) {
	tb := finalizedForDevices(t)
	x := NewTensor(1, 3, 16, 16)
	NewRNG(43).FillNormal(x, 0, 1)
	latencies := map[string]float64{}
	for _, name := range []string{"rpi3", "sgx-desktop", "sev-server", "jetson-tz"} {
		dev, err := DeviceByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dep, err := Deploy(tb, Unbounded(dev), []int{1, 3, 16, 16})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dep.Infer(x); err != nil {
			t.Fatal(err)
		}
		latencies[name] = dep.Latency()
	}
	for name, lat := range latencies {
		if lat <= 0 {
			t.Fatalf("%s: non-positive modeled latency %v", name, lat)
		}
		if name != "rpi3" && lat == latencies["rpi3"] {
			t.Fatalf("%s prices the run identically to rpi3 (%v)", name, lat)
		}
	}
}

// TestServeAcrossBackendsDiffers: the same model served on two backends
// reports the device name in Stats and different modeled throughput. Workers
// and batch are pinned to 1 so the modeled figures are deterministic.
func TestServeAcrossBackendsDiffers(t *testing.T) {
	tb := finalizedForDevices(t)
	stats := map[string]ServerStats{}
	for _, name := range []string{"rpi3", "sgx-desktop"} {
		dev, err := DeviceByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dep, err := Deploy(tb, Unbounded(dev), []int{1, 3, 16, 16})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := Serve(dep, WithWorkers(1), WithMaxBatch(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			x := NewTensor(1, 3, 16, 16)
			NewRNG(uint64(50+i)).FillNormal(x, 0, 1)
			if _, err := srv.Infer(context.Background(), x); err != nil {
				t.Fatal(err)
			}
		}
		st := srv.Stats()
		srv.Close()
		if st.Device != name {
			t.Fatalf("Stats().Device = %q, want %q", st.Device, name)
		}
		if st.PeakSecureBytes <= 0 {
			t.Fatalf("%s: peak secure bytes = %d", name, st.PeakSecureBytes)
		}
		stats[name] = st
	}
	if stats["rpi3"].ModeledThroughput == stats["sgx-desktop"].ModeledThroughput {
		t.Fatalf("both backends model %v req/s; device semantics not threaded through serving",
			stats["rpi3"].ModeledThroughput)
	}
	if stats["rpi3"].P50Latency == stats["sgx-desktop"].P50Latency {
		t.Fatal("both backends model the same p50 latency")
	}
}
