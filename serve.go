package tbnet

import (
	"fmt"
	"time"

	"tbnet/internal/serve"
)

// Server is the concurrent serving layer over deployed models: per-model
// pools of replicated enclave sessions behind micro-batching request queues,
// all drawing secure memory from one device-sized budget. Create one with
// Serve; the deployment it is built from is hosted as DefaultModel. Host
// further named models with Server.AddModel, address them with
// Server.InferModel, and hot-swap a hosted model's replicas without dropping
// a request with Server.Swap / Server.SwapModel (warm the new pool first,
// then drain the old). See the serve package documentation for the execution
// model.
type Server = serve.Server

// ServerStats is a point-in-time snapshot of a Server's behaviour —
// throughput, realized batch sizes, queue depth, hot-swap count, and
// p50/p95/p99 modeled device latency — aggregated across its hosted models
// (Server.ModelStats scopes it to one).
type ServerStats = serve.Stats

// ServeOption configures a Server.
type ServeOption func(*serve.Config) error

// WithWorkers sets the number of replicated enclave sessions serving in
// parallel (default 2). Each worker owns deep copies of both branches and
// its own enclave, meter, and trace; all workers draw their secure-memory
// reservations from one device-sized budget, so an over-wide pool fails
// with ErrSecureMemory instead of overcommitting the modeled hardware.
func WithWorkers(n int) ServeOption {
	return func(c *serve.Config) error {
		if n < 1 {
			return fmt.Errorf("%w: workers %d < 1", ErrBadOption, n)
		}
		c.Workers = n
		return nil
	}
}

// WithMaxBatch sets the micro-batch flush size (default 8). Every worker
// replica reserves secure memory for this batch capacity against the shared
// device budget, so Serve fails with ErrSecureMemory if the pool's batched
// working set does not fit the device.
func WithMaxBatch(n int) ServeOption {
	return func(c *serve.Config) error {
		if n < 1 {
			return fmt.Errorf("%w: max batch %d < 1", ErrBadOption, n)
		}
		c.MaxBatch = n
		return nil
	}
}

// WithMaxDelay sets how long an incomplete batch waits for more traffic
// before flushing (default 2ms). d must be positive; pass a tiny duration
// (e.g. time.Microsecond) for near-immediate flushing.
func WithMaxDelay(d time.Duration) ServeOption {
	return func(c *serve.Config) error {
		if d <= 0 {
			return fmt.Errorf("%w: max delay %v must be positive", ErrBadOption, d)
		}
		c.MaxDelay = d
		return nil
	}
}

// WithQueueDepth bounds the number of requests waiting in the server's queue
// before Infer blocks (default Workers*MaxBatch*4).
func WithQueueDepth(n int) ServeOption {
	return func(c *serve.Config) error {
		if n < 1 {
			return fmt.Errorf("%w: queue depth %d < 1", ErrBadOption, n)
		}
		c.QueueDepth = n
		return nil
	}
}

// Serve starts a concurrent serving layer over a deployed model. The
// deployment is used as the replication template only — the server builds
// one independent session per worker — so the caller keeps exclusive use of
// dep's own session. Stop the server with Server.Close.
//
//	srv, err := tbnet.Serve(dep, tbnet.WithWorkers(4), tbnet.WithMaxBatch(8))
//	...
//	label, err := srv.Infer(ctx, x)
func Serve(dep *Deployment, opts ...ServeOption) (*Server, error) {
	if dep == nil {
		return nil, fmt.Errorf("%w: nil deployment", ErrBadOption)
	}
	var cfg serve.Config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return serve.New(dep, cfg)
}
