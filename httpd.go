package tbnet

import (
	"net/http"

	"tbnet/internal/httpd"
)

// HTTPServer is TBNet's network-facing serving daemon: an HTTP/JSON API over
// a Fleet, fronted by a composable middleware chain (panic recovery, request
// IDs, structured logging, API-key auth, per-tenant rate limits) and exposing
// Prometheus metrics, zero-downtime swap-over-HTTP, and graceful drain. See
// the httpd package documentation for the wire surface.
type HTTPServer = httpd.Server

// HTTPConfig assembles an HTTPServer. Fleet is required; everything else
// defaults to an open, unlimited server.
type HTTPConfig = httpd.Config

// HTTPRateLimit is the daemon's per-tenant token-bucket policy: a sustained
// request rate with a burst allowance. The zero value disables rate limiting.
type HTTPRateLimit = httpd.RateLimit

// HTTPMiddleware is one layer of the daemon's request-processing chain; use
// ChainHTTP to compose custom layers around an HTTPServer's handler.
type HTTPMiddleware = httpd.Middleware

// NewHTTPServer assembles a network daemon from cfg. Serve it on a listener
// with HTTPServer.Serve and stop it gracefully — draining the fleet without
// dropping an admitted request — with HTTPServer.Shutdown.
func NewHTTPServer(cfg HTTPConfig) (*HTTPServer, error) { return httpd.New(cfg) }

// ChainHTTP wraps h in the given middlewares, first argument outermost.
func ChainHTTP(h http.Handler, mw ...HTTPMiddleware) http.Handler {
	return httpd.Chain(h, mw...)
}
