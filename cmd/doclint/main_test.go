package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCleanPackagePasses(t *testing.T) {
	dir := writePkg(t, `// Package x is documented.
package x

// Exported is documented.
func Exported() {}

// T is documented.
type T struct {
	// F is documented.
	F int
}

// M is documented.
func (T) M() {}

// Hidden things need no docs.
type hidden struct{ f int }

func (hidden) m() {}
`)
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("clean package exited %d: %s%s", code, out.String(), errb.String())
	}
}

func TestMissingDocsFlagged(t *testing.T) {
	dir := writePkg(t, `package x

func Exported() {}

type T struct {
	F int
}

func (T) M() {}

const C = 1

var V = 2
`)
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 1 {
		t.Fatalf("undocumented package exited %d, want 1", code)
	}
	text := out.String()
	for _, want := range []string{
		"package x has no package comment",
		"func Exported",
		"type T",
		"field T.F",
		"method (T).M",
		"const C",
		"var V",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("findings missing %q:\n%s", want, text)
		}
	}
}

func TestDocumentedGroupCoversMembers(t *testing.T) {
	dir := writePkg(t, `// Package x is documented.
package x

// The enum values.
const (
	A = iota
	B
)
`)
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("documented const group flagged: %s", out.String())
	}
}

func TestBadDirFails(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"/nonexistent-dir-xyz"}, &out, &errb); code != 2 {
		t.Fatalf("bad dir exited %d, want 2", code)
	}
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args exited %d, want 2", code)
	}
}
