// Command doclint enforces the repository's godoc contract: every exported
// identifier in the checked packages must carry a doc comment. It is the
// equivalent of revive's `exported` rule, implemented on go/ast so CI needs
// no third-party tooling.
//
// Usage:
//
//	doclint [-fields] DIR...
//
// Each DIR is one package directory (non-recursive; list the packages to
// check explicitly). Checked declarations:
//
//   - the package clause itself (one file must carry a package comment)
//   - exported functions and methods (methods only on exported receivers)
//   - exported types
//   - exported consts and vars (a documented declaration group covers its
//     members)
//   - with -fields (the default), exported fields of exported structs and
//     exported methods of exported interfaces
//
// Exit status is 1 if anything is missing, with one "file:line: symbol"
// diagnostic per finding, so the CI step fails with an actionable list.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run lints every listed package directory and reports missing docs.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("doclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fields := fs.Bool("fields", true, "also require docs on exported struct fields and interface methods")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "usage: doclint [-fields] DIR...")
		return 2
	}
	var findings []string
	for _, dir := range dirs {
		fnd, err := lintDir(dir, *fields)
		if err != nil {
			fmt.Fprintf(stderr, "doclint: %s: %v\n", dir, err)
			return 2
		}
		findings = append(findings, fnd...)
	}
	if len(findings) == 0 {
		fmt.Fprintf(stdout, "doclint: %d package(s) clean\n", len(dirs))
		return 0
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	fmt.Fprintf(stderr, "doclint: %d exported identifier(s) missing doc comments\n", len(findings))
	return 1
}

// lintDir parses one package directory (tests excluded) and returns the
// missing-doc findings.
func lintDir(dir string, fields bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		// Package comment: at least one file must document the package.
		hasPkgDoc := false
		var firstFile *ast.File
		var firstName string
		for name, file := range pkg.Files {
			if firstFile == nil || name < firstName {
				firstFile, firstName = file, name
			}
			if file.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc && firstFile != nil {
			report(firstFile.Package, "package "+pkg.Name+" has no package comment")
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lintDecl(decl, fields, report)
			}
		}
	}
	return findings, nil
}

// lintDecl checks one top-level declaration.
func lintDecl(decl ast.Decl, fields bool, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return
		}
		if recv := receiverName(d); recv != "" && !ast.IsExported(recv) {
			return // method on an unexported type: internal detail
		}
		if d.Doc == nil {
			what := "func " + d.Name.Name
			if r := receiverName(d); r != "" {
				what = fmt.Sprintf("method (%s).%s", r, d.Name.Name)
			}
			report(d.Name.Pos(), what+" is exported but undocumented")
		}
	case *ast.GenDecl:
		lintGenDecl(d, fields, report)
	}
}

// lintGenDecl checks type/const/var declarations. A doc comment on the
// declaration group covers all its specs (the idiomatic enum-block style);
// otherwise each exported spec needs its own.
func lintGenDecl(d *ast.GenDecl, fields bool, report func(token.Pos, string)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			if d.Doc == nil && ts.Doc == nil && ts.Comment == nil {
				report(ts.Name.Pos(), "type "+ts.Name.Name+" is exported but undocumented")
			}
			if fields {
				lintTypeMembers(ts, report)
			}
		}
	case token.CONST, token.VAR:
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		groupDocumented := d.Doc != nil
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				if !name.IsExported() {
					continue
				}
				if !groupDocumented && vs.Doc == nil && vs.Comment == nil {
					report(name.Pos(), kind+" "+name.Name+" is exported but undocumented")
				}
			}
		}
	}
}

// lintTypeMembers checks exported struct fields and interface methods of an
// exported type.
func lintTypeMembers(ts *ast.TypeSpec, report func(token.Pos, string)) {
	switch t := ts.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() && f.Doc == nil && f.Comment == nil {
					report(name.Pos(), fmt.Sprintf("field %s.%s is exported but undocumented",
						ts.Name.Name, name.Name))
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				if name.IsExported() && m.Doc == nil && m.Comment == nil {
					report(name.Pos(), fmt.Sprintf("interface method %s.%s is undocumented",
						ts.Name.Name, name.Name))
				}
			}
		}
	}
}

// receiverName extracts the receiver's base type name ("" for functions).
func receiverName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
