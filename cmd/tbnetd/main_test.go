package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tbnet"
)

// startTestDaemon launches run() in-process with -demo and returns the base
// URL and the exit-code channel. The addr file doubles as the readiness
// signal.
func startTestDaemon(t *testing.T, extraArgs ...string) (string, chan int) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-demo", "-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-devices", "rpi3:1", "-drain-timeout", "20s",
	}, extraArgs...)
	code := make(chan int, 1)
	go func() { code <- run(args, io.Discard) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return "http://" + string(b), code
		}
		select {
		case c := <-code:
			t.Fatalf("daemon exited early with code %d", c)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// demoInput synthesizes a valid /v1/infer body for the demo model's
// [1,3,16,16] sample shape.
func demoInput(seed int) []byte {
	input := make([]float64, 3*16*16)
	for i := range input {
		input[i] = float64((i*seed)%13)/13 - 0.5
	}
	body, _ := json.Marshal(map[string]any{"input": input})
	return body
}

// TestDaemonSIGTERMDrainsCleanly is the daemon-level acceptance check: a
// SIGTERM mid-burst lets every in-flight request finish (no torn
// connections), then run() exits 0.
func TestDaemonSIGTERMDrainsCleanly(t *testing.T) {
	base, code := startTestDaemon(t)

	// Sanity: the daemon serves before the signal.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	const n = 16
	results := make([]error, n)
	var started, wg sync.WaitGroup
	started.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			resp, err := http.Post(base+"/v1/infer", "application/json",
				bytes.NewReader(demoInput(i+1)))
			if err != nil {
				results[i] = err
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				results[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
			}
		}(i)
	}
	started.Wait()
	time.Sleep(15 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, err := range results {
		if err == nil {
			continue
		}
		msg := err.Error()
		// Refused cleanly (late dial after the listener closed, or a 503
		// draining answer) is acceptable; a torn connection is a dropped
		// in-flight request.
		if !strings.Contains(msg, "connection refused") && !strings.Contains(msg, "status 503") {
			t.Errorf("request %d dropped across SIGTERM drain: %v", i, err)
		}
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("daemon exit code = %d, want 0", c)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
}

// TestDaemonServesDemoModel: the demo fleet answers inference and lists its
// model with the sample shape a client needs.
func TestDaemonServesDemoModel(t *testing.T) {
	base, code := startTestDaemon(t)
	resp, err := http.Post(base+"/v1/infer", "application/json", bytes.NewReader(demoInput(3)))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Label int    `json:"label"`
		Model string `json:"model"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Model != "default" {
		t.Fatalf("infer = %d %+v", resp.StatusCode, out)
	}
	if out.Label < 0 || out.Label > 3 {
		t.Fatalf("demo label %d out of class range", out.Label)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "tbnet_fleet_requests_total") {
		t.Fatalf("metrics scrape lacks fleet counters:\n%s", b)
	}
	if !strings.Contains(string(b), "tbnet_build_info{") {
		t.Fatalf("metrics scrape lacks build info:\n%s", b)
	}

	// Tracing is on by default: the served request's timeline is readable on
	// the debug surface, with the fleet stages filled in.
	resp, err = http.Get(base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Returned int `json:"returned"`
		Spans    []struct {
			ID     string  `json:"request_id"`
			Model  string  `json:"model"`
			WallMs float64 `json:"wall_ms"`
			Stages []struct {
				Stage string `json:"stage"`
			} `json:"stages"`
		} `json:"spans"`
	}
	derr := json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || derr != nil {
		t.Fatalf("/debug/trace = %d (%v)", resp.StatusCode, derr)
	}
	if dump.Returned < 1 || len(dump.Spans) != dump.Returned {
		t.Fatalf("trace dump = %+v", dump)
	}
	sp := dump.Spans[0]
	if sp.ID == "" || sp.Model != "default" || sp.WallMs <= 0 || len(sp.Stages) == 0 {
		t.Fatalf("span lacks identity or breakdown: %+v", sp)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if c := <-code; c != 0 {
		t.Fatalf("exit code = %d", c)
	}
}

// TestDaemonAutoscaleMetrics: a daemon started with -policy ewma -autoscale
// reports the live controller and the learned latency estimates on /metrics.
func TestDaemonAutoscaleMetrics(t *testing.T) {
	base, code := startTestDaemon(t,
		"-policy", "ewma", "-autoscale", "-autoscale-min", "1",
		"-autoscale-max", "4", "-autoscale-interval", "25ms")

	resp, err := http.Post(base+"/v1/infer", "application/json", bytes.NewReader(demoInput(7)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/infer = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(b)
	for _, want := range []string{
		"tbnet_autoscale_running 1",
		"tbnet_autoscale_workers_max 4",
		"tbnet_autoscale_ticks_total",
		"tbnet_ewma_latency_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics scrape lacks %q:\n%s", want, body)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if c := <-code; c != 0 {
		t.Fatalf("exit code = %d", c)
	}
}

// TestRunFlagValidation: every cheap misconfiguration fails fast with a
// usage error before any model is built or port bound.
func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                             // nothing to serve
		{"-demo", "-devices", "warp-core:2"},           // unknown device
		{"-demo", "-devices", "rpi3:0"},                // bad worker count
		{"-demo", "-policy", "psychic"},                // unknown policy
		{"-demo", "-api-keys", "keyonly"},              // malformed key spec
		{"-demo", "-autoscale", "-autoscale-min", "0"}, // floor below 1
		{"-demo", "-autoscale", "-autoscale-min", "4", "-autoscale-max", "2"}, // inverted bounds
		{"-demo", "-autoscale", "-autoscale-interval", "0s"},                  // dead control loop
		{"-demo", "-trace-ring", "-1"},                                        // negative span ring
	}
	for i, args := range cases {
		if code := run(args, io.Discard); code != 2 {
			t.Errorf("case %d %v: exit = %d, want 2", i, args, code)
		}
	}
	// A registry name without -registry is caught at model-load time.
	if code := run([]string{"-models", "x"}, io.Discard); code == 0 {
		t.Error("bare registry name without -registry accepted")
	}
}

// TestVersionFlag: -version prints the release and toolchain versions and
// exits 0 without binding a port or building a model.
func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-version"}, &buf); code != 0 {
		t.Fatalf("exit = %d, want 0: %s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "tbnetd "+tbnet.Version) || !strings.Contains(buf.String(), "go") {
		t.Fatalf("-version output = %q", buf.String())
	}
}

// TestParseAPIKeys: the key=tenant list round-trips and rejects malformed
// entries.
func TestParseAPIKeys(t *testing.T) {
	keys, err := parseAPIKeys("a=alpha, b=beta")
	if err != nil {
		t.Fatal(err)
	}
	if keys["a"] != "alpha" || keys["b"] != "beta" || len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	if got, err := parseAPIKeys(""); got != nil || err != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
	for _, bad := range []string{"nokey", "=tenant", "key="} {
		if _, err := parseAPIKeys(bad); err == nil {
			t.Errorf("parseAPIKeys(%q) accepted", bad)
		}
	}
}
