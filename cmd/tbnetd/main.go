// Command tbnetd is TBNet's network-facing inference daemon: it assembles a
// heterogeneous serving fleet (from saved artifacts, a registry, or a built-in
// demo model), wraps it in the httpd middleware chain, and serves the HTTP/JSON
// API — /v1/infer, /v1/infer/batch, /v1/models, swap-over-HTTP, /healthz, and
// Prometheus /metrics — until SIGTERM/SIGINT, when it drains gracefully:
// in-flight requests finish, nothing admitted is dropped.
//
// Typical invocations:
//
//	tbnetd -demo -addr :8080
//	tbnetd -models edge=vgg.tbd,big=resnet.tbd -devices rpi3:2,sgx-desktop:4 \
//	       -policy cost-aware -deadline 50ms -api-keys secret=tenant-a -rate 200
//	tbnetd -demo -policy ewma -autoscale -autoscale-min 1 -autoscale-max 8
//	tbnetd -demo -precision int8        # quantized serving path for the demo model
//
// With -autoscale the fleet runs elastically: a closed-loop controller widens
// and narrows every node's worker pool between -autoscale-min and
// -autoscale-max from live load signals, each scaling event is logged, and
// the controller's counters are exported on /metrics
// (tbnet_autoscale_*).
//
// With -obfuscate the daemon serves behind a trace-obfuscation chain
// (internal/seceval): every worker run's attacker-visible event view is
// rewritten — transfer sizes padded, event order shuffled, dummy operations
// injected — and the chain's modeled latency cost is charged back into each
// run, with the per-layer spend exported as tbnet_obfuscation_* counters.
//
// The daemon is observable end to end: every request records a span timeline
// (ingress → queued → batched → ree/tee → pace → respond) into a bounded ring
// sized by -trace-ring, readable as JSON on GET /debug/trace (?min_ms= filters
// by wall time; the X-Request-Id echoes back as the span's id); latency
// distributions export as Prometheus histograms with request-id exemplars;
// requests slower than -slow-log are journaled with their stage breakdown; and
// -pprof mounts net/http/pprof under /debug/pprof/. The debug surface honours
// -api-keys: with auth enabled, timelines and profiles need a key.
//
// The bound address is printed on stderr and, with -addr-file, written to a
// file — so harnesses can start the daemon on ":0" and discover the port.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tbnet"
	"tbnet/internal/buildinfo"
	"tbnet/internal/core"
	"tbnet/internal/httpd"
	"tbnet/internal/registry"
	"tbnet/internal/seceval"
	"tbnet/internal/tensor"
	"tbnet/internal/zoo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// demoDeployment builds a small untrained two-branch model and deploys it —
// instant to construct, so the daemon can come up without any artifact for
// smoke tests and demos. Outputs are deterministic in the seed. The precision
// knob selects the f32 or int8 serving path, matching `tbnet serve`.
func demoDeployment(seed uint64, precision tbnet.Precision) (*tbnet.Deployment, error) {
	victim := zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(seed))
	tb := core.NewTwoBranch(victim, seed+1)
	tb.Finalized = true
	if precision == tbnet.PrecisionInt8 {
		return core.DeployInt8(tb, tbnet.RaspberryPi3(), []int{1, 3, 16, 16})
	}
	return core.Deploy(tb, tbnet.RaspberryPi3(), []int{1, 3, 16, 16})
}

// parseModels loads the -models list: comma-separated "name=artifact.tbd"
// entries (loaded from disk, deployed on each artifact's saved device) or
// bare "name" entries resolved in the -registry store.
func parseModels(list, regDir string) (names []string, deps []*tbnet.Deployment, err error) {
	var reg *tbnet.Registry
	for _, spec := range strings.Split(list, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, path := spec, ""
		if at := strings.IndexByte(spec, '='); at >= 0 {
			name, path = spec[:at], spec[at+1:]
		}
		if name == "" {
			return nil, nil, fmt.Errorf("model spec %q: empty name", spec)
		}
		var dep *tbnet.Deployment
		if path != "" {
			f, ferr := os.Open(path)
			if ferr != nil {
				return nil, nil, ferr
			}
			dep, err = tbnet.LoadDeploymentOn(f, nil)
			f.Close()
		} else {
			if regDir == "" {
				return nil, nil, fmt.Errorf("model spec %q names a registry entry but -registry is not set", spec)
			}
			if reg == nil {
				if reg, err = tbnet.OpenRegistry(regDir); err != nil {
					return nil, nil, err
				}
			}
			dep, err = reg.Load(name)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("model %q: %w", name, err)
		}
		names, deps = append(names, name), append(deps, dep)
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("empty model list")
	}
	return names, deps, nil
}

// parseAPIKeys parses "key=tenant" pairs into the auth table.
func parseAPIKeys(list string) (map[string]string, error) {
	if list == "" {
		return nil, nil
	}
	keys := make(map[string]string)
	for _, spec := range strings.Split(list, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		at := strings.IndexByte(spec, '=')
		if at <= 0 || at == len(spec)-1 {
			return nil, fmt.Errorf("API key spec %q: want key=tenant", spec)
		}
		keys[spec[:at]] = spec[at+1:]
	}
	return keys, nil
}

// run is the daemon body, factored from main so tests can drive a full
// start → serve → SIGTERM → drain cycle in-process.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("tbnetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:0", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	devices := fs.String("devices", "rpi3:2,sgx-desktop:2",
		"attached devices as name:workers pairs")
	policyName := fs.String("policy", "cost-aware", "routing policy: round-robin, least-loaded, cost-aware, ewma")
	deadline := fs.Duration("deadline", 0, "per-request fleet deadline (0 = none); overdue requests are shed")
	maxInFlight := fs.Int("max-inflight", 0, "fleet-wide in-flight cap (0 = capacity-weighted default)")
	auto := fs.Bool("autoscale", false, "run the elastic autoscaler over the fleet")
	autoMin := fs.Int("autoscale-min", 1, "autoscaler per-node worker floor")
	autoMax := fs.Int("autoscale-max", 8, "autoscaler per-node worker ceiling")
	autoInterval := fs.Duration("autoscale-interval", 250*time.Millisecond, "autoscaler control-loop period")
	models := fs.String("models", "", "serve saved models: name=artifact.tbd or registry names (comma-separated)")
	regDir := fs.String("registry", "", "model registry directory (lists on /v1/models, resolves ?from= swaps)")
	demo := fs.Bool("demo", false, "serve a small untrained demo model (no artifacts needed)")
	seed := fs.Uint64("seed", 1, "demo model seed")
	precision := fs.String("precision", "f32", "demo model serving precision: f32 or int8 (artifacts carry their own)")
	apiKeys := fs.String("api-keys", "", "API keys as key=tenant pairs (empty disables auth)")
	rate := fs.Float64("rate", 0, "per-tenant sustained request rate limit (0 = unlimited)")
	burst := fs.Int("burst", 0, "per-tenant burst allowance (0 = ceil(rate))")
	idleTTL := fs.Duration("idle-ttl", 0, "reap hosted models idle for this long (0 = never)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429/503 answers")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown")
	obfuscate := fs.String("obfuscate", "",
		"trace-obfuscation chain applied to every run's attacker view, e.g. pad:4096,dummy:0.25 (exports tbnet_obfuscation_* on /metrics)")
	traceRing := fs.Int("trace-ring", 4096, "request span ring capacity for GET /debug/trace (0 disables tracing)")
	slowLog := fs.Duration("slow-log", 250*time.Millisecond, "journal requests slower than this with their span breakdown (0 disables)")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (behind auth when -api-keys is set)")
	version := fs.Bool("version", false, "print the release and Go toolchain versions and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stderr, "tbnetd %s (%s)\n", tbnet.Version, buildinfo.GoVersion())
		return 0
	}
	if *traceRing < 0 {
		fmt.Fprintf(stderr, "invalid -trace-ring %d: want 0 (off) or a positive capacity\n", *traceRing)
		return 2
	}
	log := slog.New(slog.NewTextHandler(stderr, nil))

	// Everything cheap to validate fails before any model loads.
	fleetOpts, err := parseFleetDevices(*devices)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	policyOpt, err := fleetPolicy(*policyName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *auto && (*autoMin < 1 || *autoMax < *autoMin || *autoInterval <= 0) {
		fmt.Fprintf(stderr, "invalid autoscale flags: min %d, max %d, interval %v\n",
			*autoMin, *autoMax, *autoInterval)
		return 2
	}
	keys, err := parseAPIKeys(*apiKeys)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *models == "" && !*demo {
		fmt.Fprintln(stderr, "nothing to serve: give -models (or -registry names), or -demo")
		return 2
	}
	prec, err := tbnet.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	chain, err := seceval.ParseChain(*obfuscate)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var names []string
	var deps []*tbnet.Deployment
	if *models != "" {
		names, deps, err = parseModels(*models, *regDir)
	} else {
		var dep *tbnet.Deployment
		dep, err = demoDeployment(*seed, prec)
		names, deps = []string{"demo"}, []*tbnet.Deployment{dep}
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	// One tracer is shared by the fleet's workers and the HTTP layer: the
	// middleware starts each request's span, the worker that executes it
	// fills in the queue/batch/world stages, and GET /debug/trace reads the
	// ring back.
	var tracer *tbnet.Tracer
	if *traceRing > 0 {
		tracer = tbnet.NewTracer(*traceRing)
		fleetOpts = append(fleetOpts, tbnet.WithTracing(tracer))
	}
	fleetOpts = append(fleetOpts, policyOpt)
	if *deadline > 0 {
		fleetOpts = append(fleetOpts, tbnet.WithDeadline(*deadline))
	}
	if *maxInFlight > 0 {
		fleetOpts = append(fleetOpts, tbnet.WithMaxInFlight(*maxInFlight))
	}
	if *auto {
		fleetOpts = append(fleetOpts,
			tbnet.WithAutoscale(*autoMin, *autoMax),
			tbnet.WithAutoscaleInterval(*autoInterval),
			// Scaling events go to the operator log as they happen; the
			// counters live on /metrics.
			tbnet.WithAutoscaleLogger(func(ev tbnet.AutoscaleEvent) {
				log.Info("autoscale", "action", string(ev.Action), "node", ev.Node,
					"from", ev.From, "to", ev.To, "workers", ev.TotalWorkers, "reason", ev.Reason)
			}))
	}
	// With -obfuscate, a tap on every worker run rewrites the attacker-visible
	// trace through the chain and charges the modeled cost back into the run's
	// latency, so pacing, percentiles, and autoscaling all price the defense.
	// The daemon only needs the aggregate spend (for /metrics), not the
	// rewritten views, so the record buffer is kept minimal.
	var tap *seceval.Tap
	if len(chain.Layers) > 0 {
		tap = seceval.NewTap(
			seceval.WithObfuscation(chain),
			seceval.WithSeed(int64(*seed)),
			seceval.WithRunLimit(1),
		)
		fleetOpts = append(fleetOpts, tbnet.WithFleetTap(tap))
	}
	for i, name := range names[1:] {
		fleetOpts = append(fleetOpts, tbnet.WithModel(name, deps[i+1]))
	}
	f, err := tbnet.NewFleet(deps[0], fleetOpts...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	var store *registry.Store
	if *regDir != "" {
		if store, err = registry.Open(*regDir); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	srv, err := httpd.New(httpd.Config{
		Fleet:         f,
		Registry:      store,
		APIKeys:       keys,
		RateLimit:     httpd.RateLimit{RPS: *rate, Burst: *burst},
		IdleTTL:       *idleTTL,
		RetryAfter:    *retryAfter,
		Logger:        log,
		Tracer:        tracer,
		SlowThreshold: *slowLog,
		EnablePprof:   *pprofOn,
		Tap:           tap,
	})
	if err != nil {
		f.Close()
		fmt.Fprintln(stderr, err)
		return 1
	}

	// The signal handler is live before the address is published, so a
	// harness that reads -addr-file and immediately signals cannot race the
	// registration.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		f.Close()
		fmt.Fprintln(stderr, err)
		return 1
	}
	bound := l.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			l.Close()
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	log.Info("tbnetd listening", "addr", bound, "models", strings.Join(f.Models(), ","),
		"policy", *policyName, "devices", *devices)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}
	stop()
	log.Info("signal received, draining", "budget", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	log.Info("drained cleanly, bye")
	return 0
}

// parseFleetDevices parses a "name:workers" list into WithDevice options,
// validating names and widths before anything expensive happens.
func parseFleetDevices(list string) ([]tbnet.FleetOption, error) {
	var opts []tbnet.FleetOption
	for _, spec := range strings.Split(list, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, workers := spec, 2
		if at := strings.LastIndex(spec, ":"); at >= 0 {
			var n int
			if _, err := fmt.Sscanf(spec[at+1:], "%d", &n); err != nil {
				return nil, fmt.Errorf("device spec %q: workers %q is not a number", spec, spec[at+1:])
			}
			name, workers = spec[:at], n
		}
		if _, err := tbnet.DeviceByName(name); err != nil {
			return nil, fmt.Errorf("device spec %q: %w", spec, err)
		}
		if workers < 1 {
			return nil, fmt.Errorf("device spec %q: workers %d < 1", spec, workers)
		}
		opts = append(opts, tbnet.WithDevice(name, workers))
	}
	if len(opts) == 0 {
		return nil, fmt.Errorf("empty device list")
	}
	return opts, nil
}

// fleetPolicy maps the -policy flag onto a fleet option: one of the built-in
// routing policies, or "ewma", which also installs the online latency
// estimator the adaptive policy learns from.
func fleetPolicy(name string) (tbnet.FleetOption, error) {
	switch name {
	case "round-robin":
		return tbnet.WithPolicy(tbnet.RoundRobin()), nil
	case "least-loaded":
		return tbnet.WithPolicy(tbnet.LeastLoaded()), nil
	case "cost-aware":
		return tbnet.WithPolicy(tbnet.CostAware()), nil
	case "ewma":
		return tbnet.WithEWMARouting(0), nil
	}
	return nil, fmt.Errorf("unknown policy %q (want round-robin, least-loaded, cost-aware, or ewma)", name)
}
