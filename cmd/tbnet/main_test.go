package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tbnet"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestNoArgsPrintsUsage(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr missing usage: %q", stderr)
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, stderr := runCLI(t, "frobnicate")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown command") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestInfoCommand(t *testing.T) {
	code, stdout, _ := runCLI(t, "info")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, want := range []string{"rpi3", "sgx-desktop", "sev-server", "jetson-tz",
		"REE throughput", "secure memory"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("info output missing %q:\n%s", want, stdout)
		}
	}
}

// TestUnknownDeviceRejected: every workload command validates -device against
// the registry and teaches the caller the known names.
func TestUnknownDeviceRejected(t *testing.T) {
	for _, args := range [][]string{
		{"pipeline", "-device", "abacus"},
		{"serve", "-device", "abacus"},
		{"fleet", "-device", "abacus"},
		{"experiment", "table3", "-device", "abacus"},
	} {
		code, _, stderr := runCLI(t, args...)
		if code != 2 {
			t.Fatalf("%v: exit = %d, want 2", args, code)
		}
		if !strings.Contains(stderr, "rpi3") {
			t.Fatalf("%v: stderr %q does not list registered devices", args, stderr)
		}
	}
}

func TestExperimentValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"missing name", []string{"experiment"}},
		{"unknown name", []string{"experiment", "table9"}},
		{"bad scale", []string{"experiment", "table1", "-scale", "galactic"}},
		{"bad flag", []string{"experiment", "table1", "-bogus"}},
		{"json all", []string{"experiment", "all", "-json"}},
	}
	for _, c := range cases {
		code, _, _ := runCLI(t, c.args...)
		if code != 2 {
			t.Fatalf("%s: exit = %d, want 2", c.name, code)
		}
	}
}

func TestPipelineFlagValidation(t *testing.T) {
	cases := [][]string{
		{"pipeline", "-arch", "transformer"},
		{"pipeline", "-dataset", "imagenet"},
		{"pipeline", "-scale", "galactic"},
		{"pipeline", "-bogus"},
	}
	for _, args := range cases {
		code, _, _ := runCLI(t, args...)
		if code != 2 {
			t.Fatalf("%v: exit = %d, want 2", args, code)
		}
	}
}

func TestServeFlagValidation(t *testing.T) {
	cases := [][]string{
		{"serve", "-workers", "0"},
		{"serve", "-batch", "-1"},
		{"serve", "-requests", "0"},
		{"serve", "-delay", "-5ms"},
		{"serve", "-delay", "0"},
		{"serve", "-scale", "galactic"},
		{"serve", "-arch", "transformer"},
		{"serve", "-bogus"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, args...)
		if code != 2 {
			t.Fatalf("%v: exit = %d, want 2 (stderr %q)", args, code, stderr)
		}
	}
}

func TestFleetFlagValidation(t *testing.T) {
	cases := [][]string{
		{"fleet", "-requests", "0"},
		{"fleet", "-rate", "0"},
		{"fleet", "-rate", "-3"},
		{"fleet", "-deadline", "-1ms"},
		{"fleet", "-max-inflight", "-1"},
		{"fleet", "-devices", ""},
		{"fleet", "-devices", "rpi3:two"},
		{"fleet", "-devices", "abacus:2"},
		{"fleet", "-devices", "rpi3:0"},
		{"fleet", "-policy", "darts"},
		{"fleet", "-scale", "galactic"},
		{"fleet", "-pace", "-1"},
		{"fleet", "-autoscale", "-autoscale-min", "0"},
		{"fleet", "-autoscale", "-autoscale-min", "4", "-autoscale-max", "2"},
		{"fleet", "-autoscale", "-autoscale-interval", "0s"},
		{"fleet", "-bogus"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, args...)
		if code != 2 {
			t.Fatalf("%v: exit = %d, want 2 (stderr %q)", args, code, stderr)
		}
	}
}

// TestFleetCommandEndToEnd runs the fleet command on the tiny architecture
// at micro scale — train → deploy → route an open-loop Poisson load across a
// mixed fleet — and checks the JSON artifact shape (the BENCH_fleet.json CI
// trajectory). Gated behind -short because it trains a (small) pipeline.
func TestFleetCommandEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping pipeline-backed fleet run in short mode")
	}
	code, stdout, stderr := runCLI(t,
		"fleet", "-arch", "tiny-vgg", "-scale", "micro",
		"-devices", "rpi3:1,sgx-desktop:2,jetson-tz:1", "-policy", "cost-aware",
		"-requests", "32", "-rate", "2000", "-poisson", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var st struct {
		Policy           string  `json:"policy"`
		Devices          int     `json:"devices"`
		Requests         int64   `json:"requests"`
		Shed             int64   `json:"shed"`
		RoutingDecisions int64   `json:"routing_decisions"`
		P99Micros        float64 `json:"p99_micros"`
		PerDevice        []struct {
			Name string `json:"name"`
		} `json:"per_device"`
	}
	if err := json.Unmarshal([]byte(stdout), &st); err != nil {
		t.Fatalf("fleet -json output not parseable: %v\n%s", err, stdout)
	}
	if st.Policy != "cost-aware" || st.Devices != 3 || len(st.PerDevice) != 3 {
		t.Fatalf("fleet attribution wrong: %+v", st)
	}
	if st.Requests+st.Shed < 32 || st.RoutingDecisions < st.Requests {
		t.Fatalf("request accounting wrong: %+v", st)
	}
	if st.P99Micros <= 0 {
		t.Fatalf("p99 = %g, want > 0", st.P99Micros)
	}
}

// TestFleetAutoscaleEndToEnd runs the fleet command with the elastic
// controller on: the JSON artifact keeps the flat fleet snapshot and gains a
// nested autoscale object echoing the controller's counters and bounds.
// Gated behind -short because it trains a (small) pipeline.
func TestFleetAutoscaleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping pipeline-backed fleet run in short mode")
	}
	code, stdout, stderr := runCLI(t,
		"fleet", "-arch", "tiny-vgg", "-scale", "micro",
		"-devices", "rpi3:1", "-policy", "ewma", "-pace", "4",
		"-requests", "48", "-rate", "3000",
		"-autoscale", "-autoscale-min", "1", "-autoscale-max", "4",
		"-autoscale-interval", "10ms", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var st struct {
		Policy    string `json:"policy"`
		Requests  int64  `json:"requests"`
		Shed      int64  `json:"shed"`
		Autoscale struct {
			Ticks   int64 `json:"ticks"`
			Workers int   `json:"workers"`
			Min     int   `json:"min"`
			Max     int   `json:"max"`
		} `json:"autoscale"`
	}
	if err := json.Unmarshal([]byte(stdout), &st); err != nil {
		t.Fatalf("fleet -autoscale -json output not parseable: %v\n%s", err, stdout)
	}
	if st.Requests+st.Shed < 48 {
		t.Fatalf("request accounting wrong: %+v", st)
	}
	if st.Autoscale.Ticks == 0 {
		t.Fatalf("controller never ticked: %+v", st)
	}
	if st.Autoscale.Min != 1 || st.Autoscale.Max != 4 {
		t.Fatalf("configured bounds not echoed: %+v", st)
	}
}

// TestScenarioSweepEndToEnd drives the same bursty workload through the
// autoscaled fleet and two static widths and checks the comparison artifact
// (the BENCH_autoscale.json CI trajectory): one point per configuration,
// latency and worker-seconds populated. Gated behind -short because it trains
// a (small) pipeline and runs three serving legs.
func TestScenarioSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping pipeline-backed scenario sweep in short mode")
	}
	code, stdout, stderr := runCLI(t,
		"scenario", "-arch", "tiny-vgg", "-scale", "micro",
		"-devices", "rpi3:1", "-policy", "ewma", "-pace", "2",
		"-autoscale-min", "1", "-autoscale-max", "4", "-autoscale-interval", "10ms",
		"-sweep", "1,2",
		"-spec", "burst:burst:200:500ms:600:250ms",
		"-json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var out struct {
		Sweep []struct {
			Config        string  `json:"config"`
			Autoscale     bool    `json:"autoscale"`
			WorstP99Ms    float64 `json:"worst_p99_ms"`
			WorkerSeconds float64 `json:"worker_seconds"`
			Offered       int     `json:"offered"`
			Served        int     `json:"served"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("sweep artifact not parseable: %v\n%s", err, stdout)
	}
	if len(out.Sweep) != 3 {
		t.Fatalf("sweep has %d points, want autoscale + 2 statics:\n%s", len(out.Sweep), stdout)
	}
	for i, want := range []string{"autoscale[1,4]", "static-1", "static-2"} {
		if out.Sweep[i].Config != want {
			t.Fatalf("point %d config = %q, want %q", i, out.Sweep[i].Config, want)
		}
	}
	if !out.Sweep[0].Autoscale || out.Sweep[1].Autoscale || out.Sweep[2].Autoscale {
		t.Fatalf("autoscale attribution wrong: %+v", out.Sweep)
	}
	for _, p := range out.Sweep {
		if p.Offered == 0 || p.Served == 0 {
			t.Fatalf("leg %s served nothing: %+v", p.Config, p)
		}
		if p.WorstP99Ms <= 0 || p.WorkerSeconds <= 0 {
			t.Fatalf("leg %s lacks latency/cost figures: %+v", p.Config, p)
		}
	}
}

// TestServeCommandEndToEnd runs the serve command on the tiny architecture at
// micro scale — the full train→deploy→serve loop — and checks the JSON
// summary shape. Gated behind -short because it trains a (small) pipeline.
func TestServeCommandEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping pipeline-backed serve run in short mode")
	}
	code, stdout, stderr := runCLI(t,
		"serve", "-arch", "tiny-vgg", "-scale", "micro", "-device", "jetson-tz",
		"-workers", "2", "-batch", "4", "-requests", "24", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var st struct {
		Device            string  `json:"device"`
		PeakSecureBytes   int64   `json:"peak_secure_bytes"`
		Requests          int64   `json:"requests"`
		Errors            int64   `json:"errors"`
		MeanBatch         float64 `json:"mean_batch"`
		Workers           int     `json:"workers"`
		ModeledThroughput float64 `json:"modeled_throughput_rps"`
	}
	if err := json.Unmarshal([]byte(stdout), &st); err != nil {
		t.Fatalf("serve -json output not parseable: %v\n%s", err, stdout)
	}
	if st.Requests != 24 || st.Errors != 0 {
		t.Fatalf("served %d requests with %d errors, want 24/0", st.Requests, st.Errors)
	}
	if st.Workers != 2 || st.ModeledThroughput <= 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.Device != "jetson-tz" || st.PeakSecureBytes <= 0 {
		t.Fatalf("device attribution wrong: %+v", st)
	}
}

// TestServeCLIDeviceChangesModeledNumbers is the CLI acceptance check: the
// same pipeline served on two backends yields machine-distinguishable JSON
// with different modeled latency. Batch and workers are pinned to 1 so the
// modeled figures do not depend on wall-clock batching. Gated behind -short.
func TestServeCLIDeviceChangesModeledNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping pipeline-backed serve runs in short mode")
	}
	p50 := map[string]float64{}
	for _, device := range []string{"rpi3", "sgx-desktop"} {
		code, stdout, stderr := runCLI(t,
			"serve", "-arch", "tiny-vgg", "-scale", "micro", "-device", device,
			"-workers", "1", "-batch", "1", "-requests", "8", "-json")
		if code != 0 {
			t.Fatalf("%s: exit = %d, stderr:\n%s", device, code, stderr)
		}
		var st struct {
			Device        string  `json:"device"`
			P50LatencySec float64 `json:"p50_latency_sec"`
		}
		if err := json.Unmarshal([]byte(stdout), &st); err != nil {
			t.Fatalf("%s: %v\n%s", device, err, stdout)
		}
		if st.Device != device {
			t.Fatalf("json device = %q, want %q", st.Device, device)
		}
		p50[device] = st.P50LatencySec
	}
	if p50["rpi3"] == p50["sgx-desktop"] {
		t.Fatalf("both devices report p50 %v — cost models not threaded through the CLI",
			p50["rpi3"])
	}
}

// TestPipelineCommandJSON runs the smallest full pipeline and checks the
// machine-readable summary. Gated behind -short.
func TestPipelineCommandJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping pipeline run in short mode")
	}
	code, stdout, stderr := runCLI(t,
		"pipeline", "-arch", "tiny-vgg", "-scale", "micro", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var res struct {
		Arch        string  `json:"arch"`
		Device      string  `json:"device"`
		VictimAcc   float64 `json:"victim_acc"`
		TBAcc       float64 `json:"tbnet_acc"`
		SecureBytes int64   `json:"peak_secure_bytes"`
		LatencySec  float64 `json:"latency_sec"`
	}
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("pipeline -json output not parseable: %v\n%s", err, stdout)
	}
	if res.Arch != "tiny-vgg" {
		t.Fatalf("arch = %q", res.Arch)
	}
	if res.VictimAcc < 0 || res.VictimAcc > 1 || res.TBAcc < 0 || res.TBAcc > 1 {
		t.Fatalf("accuracies out of range: %+v", res)
	}
	if res.Device != "rpi3" || res.SecureBytes <= 0 || res.LatencySec <= 0 {
		t.Fatalf("device attribution wrong: %+v", res)
	}
}

// TestVersionCommand: `tbnet version` (and the -version spellings) prints the
// release and toolchain versions and exits 0.
func TestVersionCommand(t *testing.T) {
	for _, cmd := range []string{"version", "-version", "--version"} {
		code, stdout, stderr := runCLI(t, cmd)
		if code != 0 {
			t.Fatalf("%s: exit = %d, stderr: %s", cmd, code, stderr)
		}
		if !strings.Contains(stdout, "tbnet "+tbnet.Version) || !strings.Contains(stdout, "go") {
			t.Fatalf("%s output = %q", cmd, stdout)
		}
	}
}

// TestScenarioTraceOutValidation: -trace-out only makes sense for a local
// fleet run — client mode and sweep comparisons refuse it fast.
func TestScenarioTraceOutValidation(t *testing.T) {
	for _, args := range [][]string{
		{"scenario", "-trace-out", "/tmp/x", "-target", "http://127.0.0.1:1"},
		{"scenario", "-trace-out", "/tmp/x", "-sweep", "1,2"},
	} {
		code, _, stderr := runCLI(t, args...)
		if code != 2 {
			t.Fatalf("%v: exit = %d, want 2 (stderr %q)", args, code, stderr)
		}
		if !strings.Contains(stderr, "-trace-out") {
			t.Fatalf("%v: stderr %q does not explain the conflict", args, stderr)
		}
	}
}

// TestScenarioTraceOutEndToEnd drives a paced local fleet through a short
// phase with span capture on and checks the -trace-out artifact: the
// /debug/trace JSON shape, with per-request timelines whose stage breakdowns
// carry the queue/batch/world costs. Gated behind -short (it trains a small
// pipeline).
func TestScenarioTraceOutEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping pipeline-backed scenario run in short mode")
	}
	out := filepath.Join(t.TempDir(), "spans.json")
	code, stdout, stderr := runCLI(t,
		"scenario", "-arch", "tiny-vgg", "-scale", "micro",
		"-devices", "rpi3:1", "-pace", "2",
		"-spec", "steady:uniform:100:500ms",
		"-trace-out", out, "-json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "span timeline(s)") {
		t.Fatalf("no trace-out confirmation on stderr:\n%s", stderr)
	}
	// The main stdout artifact is unchanged by tracing.
	var res struct {
		Scenario struct {
			Served int `json:"served"`
		} `json:"scenario"`
	}
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("scenario artifact not parseable: %v\n%s", err, stdout)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Returned int              `json:"returned"`
		Spans    []tbnet.SpanData `json:"spans"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("trace artifact not parseable: %v\n%s", err, raw)
	}
	if dump.Returned == 0 || dump.Returned != len(dump.Spans) {
		t.Fatalf("trace artifact header = %d spans, body has %d", dump.Returned, len(dump.Spans))
	}
	if res.Scenario.Served > 0 && dump.Returned > res.Scenario.Served {
		t.Fatalf("captured %d spans for %d served requests", dump.Returned, res.Scenario.Served)
	}
	for _, d := range dump.Spans[:min(3, len(dump.Spans))] {
		if d.ID == "" || d.WallMs <= 0 || len(d.Stages) == 0 {
			t.Fatalf("span lacks identity or breakdown: %+v", d)
		}
		for _, stage := range []string{"queued", "ree", "tee", "pace"} {
			if d.StageMs(stage) <= 0 {
				t.Fatalf("span %s missing stage %q: %s", d.ID, stage, d.StagesString())
			}
		}
	}
}
