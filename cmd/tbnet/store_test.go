package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadFlagValidation(t *testing.T) {
	cases := [][]string{
		{"save"}, // neither -out nor -registry
		{"save", "-out", "x.tbd", "-registry", "r"}, // both
		{"load"},
		{"load", "-in", "x.tbd", "-registry", "r"},
		{"load", "-in", "x.tbd", "-device", "abacus"},
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Fatalf("%v exited %d, want 2", args, code)
		}
	}
}

func TestScenarioFlagValidation(t *testing.T) {
	cases := [][]string{
		{"scenario", "-spec", "oops"},
		{"scenario", "-spec", "x:squiggle:100:1s"},
		{"scenario", "-spec", "x:uniform:abc:1s"},
		{"scenario", "-spec", "x:uniform:100:notatime"},
		{"scenario", "-spec", "x:burst:100:1s:50"}, // peak below base rate
		{"scenario", "-devices", "abacus:2"},
		{"scenario", "-policy", "vibes"},
		{"scenario", "-models", "m"}, // bare name without -registry
		{"scenario", "-trace", "/nonexistent/trace.txt"},
		// Client mode: a bad -target URL must fail fast as a usage error,
		// before any phase parse or (minutes-long) model build.
		{"scenario", "-target", "://nope"},
		{"scenario", "-target", "ftp://host:21"},
		{"scenario", "-target", "localhost:8080"},                           // scheme-less
		{"scenario", "-target", "http://"},                                  // no host
		{"scenario", "-target", "http://127.0.0.1:1", "-models", "m=x.tbd"}, // conflicting modes
		// Autoscale and sweep misconfigurations fail before any model builds.
		{"scenario", "-pace", "-0.5"},
		{"scenario", "-sweep", "0"},
		{"scenario", "-sweep", "two"},
		{"scenario", "-sweep", " , "},
		{"scenario", "-autoscale", "-autoscale-min", "0"},
		{"scenario", "-autoscale", "-autoscale-min", "4", "-autoscale-max", "2"},
		{"scenario", "-autoscale", "-autoscale-interval", "-1ms"},
		{"scenario", "-target", "http://127.0.0.1:1", "-autoscale"}, // the daemon owns its scaling
		{"scenario", "-target", "http://127.0.0.1:1", "-sweep", "2"},
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Fatalf("%v exited %d, want 2", args, code)
		}
	}
}

// TestSaveLoadServeScenarioEndToEnd walks the whole persistence story at
// micro scale: save two models into a registry, list it, restore one, serve
// both from the store on one server, then drive a short mixed-model scenario
// against a fleet serving them — asserting the JSON artifact carries the
// per-phase latency/shed/throughput rows the CI trajectory records.
func TestSaveLoadServeScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains micro pipelines")
	}
	reg := t.TempDir()

	// Save two differently-seeded models.
	for i, name := range []string{"prod", "canary"} {
		code, stdout, stderr := runCLI(t,
			"save", "-arch", "tiny-vgg", "-scale", "micro", "-seed", string(rune('1'+i)),
			"-registry", reg, "-name", name, "-json")
		if code != 0 {
			t.Fatalf("save %s exited %d: %s", name, code, stderr)
		}
		var summary struct {
			Name   string `json:"name"`
			SHA256 string `json:"sha256"`
			Device string `json:"device"`
		}
		if err := json.Unmarshal([]byte(stdout), &summary); err != nil {
			t.Fatalf("save JSON: %v\n%s", err, stdout)
		}
		if summary.Name != name || len(summary.SHA256) != 64 || summary.Device != "rpi3" {
			t.Fatalf("save summary = %+v", summary)
		}
	}

	// List the registry.
	code, stdout, stderr := runCLI(t, "load", "-registry", reg, "-json")
	if code != 0 {
		t.Fatalf("list exited %d: %s", code, stderr)
	}
	var entries []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal([]byte(stdout), &entries); err != nil {
		t.Fatalf("list JSON: %v\n%s", err, stdout)
	}
	if len(entries) != 2 || entries[0].Name != "canary" || entries[1].Name != "prod" {
		t.Fatalf("entries = %+v", entries)
	}

	// Restore one entry, re-targeted onto a different backend.
	code, stdout, stderr = runCLI(t,
		"load", "-registry", reg, "-name", "prod", "-device", "jetson-tz", "-json")
	if code != 0 {
		t.Fatalf("load exited %d: %s", code, stderr)
	}
	var loaded struct {
		Device     string  `json:"device"`
		LatencySec float64 `json:"latency_sec"`
	}
	if err := json.Unmarshal([]byte(stdout), &loaded); err != nil {
		t.Fatalf("load JSON: %v\n%s", err, stdout)
	}
	if loaded.Device != "jetson-tz" || loaded.LatencySec <= 0 {
		t.Fatalf("loaded = %+v", loaded)
	}

	// Serve both models from the store on one multi-tenant server.
	code, stdout, stderr = runCLI(t,
		"serve", "-models", "prod,canary", "-registry", reg,
		"-requests", "24", "-workers", "2", "-json")
	if code != 0 {
		t.Fatalf("serve -models exited %d: %s", code, stderr)
	}
	var served struct {
		Requests int64 `json:"requests"`
		Models   int   `json:"models"`
	}
	if err := json.Unmarshal([]byte(stdout), &served); err != nil {
		t.Fatalf("serve JSON: %v\n%s", err, stdout)
	}
	if served.Requests != 24 || served.Models != 2 {
		t.Fatalf("served = %+v, want 24 requests over 2 models", served)
	}

	// Drive a short mixed-model scenario and check the artifact shape.
	code, stdout, stderr = runCLI(t,
		"scenario", "-models", "prod,canary", "-registry", reg,
		"-devices", "rpi3:1,sgx-desktop:1",
		"-spec", "calm:uniform:150:300ms,spike:burst:150:400ms:600:200ms",
		"-json")
	if code != 0 {
		t.Fatalf("scenario exited %d: %s", code, stderr)
	}
	var artifact struct {
		Scenario struct {
			Offered int `json:"offered"`
			Phases  []struct {
				Name     string  `json:"name"`
				Offered  int     `json:"offered"`
				ShedRate float64 `json:"shed_rate"`
				P50Ms    float64 `json:"p50_ms"`
			} `json:"phases"`
			PerModel []struct {
				Model  string `json:"model"`
				Served int    `json:"served"`
			} `json:"per_model"`
		} `json:"scenario"`
		Fleet struct {
			Devices int `json:"devices"`
			Models  []struct {
				Name string `json:"name"`
			} `json:"models"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal([]byte(stdout), &artifact); err != nil {
		t.Fatalf("scenario JSON: %v\n%s", err, stdout)
	}
	sc := artifact.Scenario
	if sc.Offered == 0 || len(sc.Phases) != 2 || sc.Phases[0].Name != "calm" || sc.Phases[1].Name != "spike" {
		t.Fatalf("scenario artifact = %+v", sc)
	}
	if sc.Phases[0].P50Ms <= 0 {
		t.Fatalf("calm phase carries no latency percentiles: %+v", sc.Phases[0])
	}
	if len(sc.PerModel) != 2 {
		t.Fatalf("per-model rows = %+v", sc.PerModel)
	}
	if artifact.Fleet.Devices != 2 || len(artifact.Fleet.Models) != 2 {
		t.Fatalf("fleet snapshot = %+v", artifact.Fleet)
	}
}

// TestScenarioTraceReplayEndToEnd: a trace file drives a replay phase.
func TestScenarioTraceReplayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a micro pipeline")
	}
	dir := t.TempDir()
	artifact := filepath.Join(dir, "m.tbd")
	if code, _, stderr := runCLI(t,
		"save", "-arch", "tiny-vgg", "-scale", "micro", "-out", artifact); code != 0 {
		t.Fatalf("save exited %d: %s", code, stderr)
	}
	trace := filepath.Join(dir, "trace.txt")
	if err := os.WriteFile(trace, []byte("0.0\n0.01\n0.02\n0.05\n0.08\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t,
		"scenario", "-models", "m="+artifact, "-devices", "rpi3:1", "-trace", trace, "-json")
	if code != 0 {
		t.Fatalf("scenario replay exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, `"pattern":"replay"`) {
		t.Fatalf("replay artifact missing replay phase: %s", stdout)
	}
	var out struct {
		Scenario struct {
			Offered int `json:"offered"`
			Served  int `json:"served"`
		} `json:"scenario"`
	}
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatal(err)
	}
	if out.Scenario.Offered != 5 || out.Scenario.Served != 5 {
		t.Fatalf("replayed %d/%d, want 5/5", out.Scenario.Served, out.Scenario.Offered)
	}
}
