// Command tbnet drives the TBNet reproduction: it trains victims, generates
// the two-branch substitution model, and regenerates every table and figure
// of the paper's evaluation on the simulated TrustZone substrate.
//
// Usage:
//
//	tbnet experiment <all|table1|table2|table3|fig2|fig3|fig4|ablation> [flags]
//	tbnet pipeline [flags]     # run one train→transfer→prune→finalize flow
//	tbnet info                 # print the simulated device model
//
// Flags:
//
//	-scale ci|full   experiment scale (default ci)
//	-seed N          master seed (default 1)
//	-arch vgg|resnet (pipeline only)
//	-dataset c10|c100 (pipeline only)
//	-v               verbose progress logging
package main

import (
	"flag"
	"fmt"
	"os"

	"tbnet/internal/experiments"
	"tbnet/internal/report"
	"tbnet/internal/tee"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.String("scale", "ci", "experiment scale: ci or full")
	seed := fs.Uint64("seed", 1, "master seed")
	arch := fs.String("arch", "vgg", "architecture: vgg or resnet (pipeline)")
	dataset := fs.String("dataset", "c10", "dataset: c10 or c100 (pipeline)")
	verbose := fs.Bool("v", false, "verbose progress logging")

	switch cmd {
	case "experiment":
		if len(os.Args) < 3 {
			usage()
			os.Exit(2)
		}
		which := os.Args[2]
		if err := fs.Parse(os.Args[3:]); err != nil {
			os.Exit(2)
		}
		lab := newLab(*scale, *seed, *verbose)
		runExperiment(lab, which)
	case "pipeline":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		lab := newLab(*scale, *seed, true)
		p := lab.Pipeline(experiments.Combo{Arch: *arch, Dataset: *dataset})
		fmt.Printf("victim accuracy: %s\n", report.Pct(p.VictimAcc))
		fmt.Printf("TBNet accuracy:  %s\n", report.Pct(p.TBAcc))
		fmt.Printf("pruning iterations applied: %d\n", p.PruneRes.Iterations)
		for _, h := range p.PruneRes.History {
			status := "kept"
			if h.Reverted {
				status = "reverted"
			}
			fmt.Printf("  iter %d: %d prunable channels, acc %s (%s)\n",
				h.Iter, h.TotalChannels, report.Pct(h.Acc), status)
		}
	case "info":
		d := tee.RaspberryPi3()
		fmt.Printf("device: %s\n", d.Name)
		fmt.Printf("  REE throughput:   %.2g FLOP/s\n", d.REEFlopsPerSec)
		fmt.Printf("  TEE throughput:   %.2g FLOP/s\n", d.TEEFlopsPerSec)
		fmt.Printf("  SMC latency:      %v\n", d.SMCLatency)
		fmt.Printf("  transfer BW:      %.2g B/s\n", d.TransferBytesPerSec)
		fmt.Printf("  secure memory:    %s\n", report.Bytes(d.SecureMemBytes))
	default:
		usage()
		os.Exit(2)
	}
}

func newLab(scale string, seed uint64, verbose bool) *experiments.Lab {
	cfg := experiments.Config{Seed: seed}
	switch scale {
	case "ci":
		cfg.Scale = experiments.CIScale()
	case "full":
		cfg.Scale = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want ci or full)\n", scale)
		os.Exit(2)
	}
	if verbose {
		cfg.Log = os.Stderr
	}
	return experiments.NewLab(cfg)
}

func runExperiment(lab *experiments.Lab, which string) {
	w := os.Stdout
	switch which {
	case "all":
		lab.RunAll(w)
	case "table1":
		lab.Table1().Render(w)
	case "table2":
		lab.Table2().Render(w)
	case "table3":
		lab.Table3().Render(w)
	case "fig2":
		report.RenderSeries(w, "Fig. 2: attacker fine-tuning M_R of VGG18-S under varying data availability", lab.Fig2())
	case "fig3":
		lab.Fig3().Render(w)
	case "fig4":
		mr, mt := lab.Fig4()
		fmt.Fprintln(w, "Fig. 4: BN weight distributions after knowledge transfer (VGG18-S/SynthC10)")
		mr.Render(w, "M_R |gamma|", 40)
		mt.Render(w, "M_T |gamma|", 40)
		fmt.Fprintf(w, "mean |gamma|: M_R %.4f vs M_T %.4f\n", mr.Mean(), mt.Mean())
	case "ablation":
		lab.Ablation().Render(w)
	case "ablation-ranking":
		lab.AblationPruneRanking().Render(w)
	case "ablation-rollback":
		lab.AblationRollback().Render(w)
	case "ablation-lambda":
		lab.AblationLambda().Render(w)
	case "ablation-quant":
		lab.AblationQuant().Render(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", which)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tbnet experiment <all|table1|table2|table3|fig2|fig3|fig4|ablation|
                    ablation-ranking|ablation-rollback|ablation-lambda|ablation-quant>
                   [-scale ci|full] [-seed N] [-v]
  tbnet pipeline [-arch vgg|resnet] [-dataset c10|c100] [-scale ci|full] [-seed N]
  tbnet info`)
}
