// Command tbnet drives the TBNet reproduction: it trains victims, generates
// the two-branch substitution model, persists and restores finalized
// deployments, serves them concurrently on the simulated TrustZone
// substrate — single device, mixed fleet, or under a trace-driven workload
// scenario — and regenerates every table and figure of the paper's
// evaluation.
//
// Usage:
//
//	tbnet experiment <all|table1|table2|table3|fig2|fig3|fig4|hw|quant|fleet|ablation|...> [flags]
//	tbnet pipeline [flags]    # one train→transfer→prune→finalize flow
//	tbnet save [flags]        # run the pipeline and persist the deployment artifact
//	tbnet load [flags]        # restore a saved deployment (or list a registry)
//	tbnet serve [flags]       # deploy and serve a synthetic request load
//	tbnet fleet [flags]       # serve across a mixed device fleet with routed traffic
//	tbnet scenario [flags]    # drive a fleet through a phased / trace-replayed workload
//	tbnet info                # print the registered hardware backends
//	tbnet version             # print the release and Go toolchain versions
//
// Common flags:
//
//	-scale micro|ci|full  workload scale (default ci)
//	-seed N               master seed (default 1)
//	-arch vgg|resnet|mobilenet|tiny-vgg|tiny-resnet
//	-dataset c10|c100
//	-device NAME          hardware backend (default rpi3; see `tbnet info`)
//	-json                 machine-readable output (all workload commands)
//	-v                    verbose progress logging
//
// Save/load flags:
//
//	-out FILE         artifact file to write (save)
//	-in FILE          artifact file to read (load)
//	-registry DIR     named model store directory (save into / load from / list)
//	-name NAME        registry entry name (save default: the arch name)
//
// Serve flags:
//
//	-workers N    replicated enclave sessions per model (default 4)
//	-batch N      micro-batch flush size (default 8)
//	-delay D      micro-batch flush delay (default 2ms)
//	-requests N   synthetic requests to serve (default 64)
//	-models LIST  serve saved models (name=artifact.tbd, or registry names
//	              with -registry) instead of training a pipeline; several
//	              models are hosted concurrently on one server
//
// Fleet flags:
//
//	-devices LIST     attached devices as name:workers pairs
//	                  (default rpi3:2,sgx-desktop:2,jetson-tz:2)
//	-policy NAME      round-robin | least-loaded | cost-aware | ewma
//	                  (default cost-aware; ewma routes on learned latencies)
//	-requests N       synthetic requests to offer (default 64)
//	-rate R           open-loop arrival rate in req/s (default 200)
//	-poisson          exponential (Poisson-process) interarrival times
//	-deadline D       per-request deadline; overdue requests are shed (default none)
//	-max-inflight N   fleet-wide in-flight cap (default capacity-weighted)
//
// Autoscale flags (fleet and scenario):
//
//	-autoscale             run the elastic autoscaler over the fleet
//	-autoscale-min N       per-node worker floor (default 1)
//	-autoscale-max N       per-node worker ceiling (default 8)
//	-autoscale-interval D  control-loop period (default 50ms)
//	-pace S                pace workers at modeled-latency × S of wall time,
//	                       so capacity genuinely scales with worker count
//
// Scenario flags (plus -devices/-policy/-deadline/-max-inflight as fleet):
//
//	-spec LIST    phases as name:pattern:rate:duration[:peak[:period]] with
//	              pattern uniform|poisson|burst|ramp|diurnal
//	-trace FILE   replay an arrival trace ("<offset-seconds> [model]" lines)
//	-models LIST  serve saved models (mixed-model traffic when several)
//	-sweep LIST   also run the same workload at these static widths and
//	              render the static-vs-autoscale comparison (implies -autoscale)
//	-trace-out F  record per-request span timelines during the run and write
//	              them to F after it (a table, or the /debug/trace JSON shape
//	              with -json); local fleet runs only
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"tbnet"
	"tbnet/internal/buildinfo"
	"tbnet/internal/experiments"
	"tbnet/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches one CLI invocation; it is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch cmd := args[0]; cmd {
	case "experiment":
		return runExperimentCmd(args[1:], stdout, stderr)
	case "pipeline":
		return runPipelineCmd(args[1:], stdout, stderr)
	case "serve":
		return runServeCmd(args[1:], stdout, stderr)
	case "fleet":
		return runFleetCmd(args[1:], stdout, stderr)
	case "save":
		return runSaveCmd(args[1:], stdout, stderr)
	case "load":
		return runLoadCmd(args[1:], stdout, stderr)
	case "scenario":
		return runScenarioCmd(args[1:], stdout, stderr)
	case "info":
		return runInfoCmd(stdout)
	case "version", "-version", "--version":
		fmt.Fprintf(stdout, "tbnet %s (%s)\n", tbnet.Version, buildinfo.GoVersion())
		return 0
	default:
		fmt.Fprintf(stderr, "unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
}

// commonFlags carries the flags shared by the workload commands.
type commonFlags struct {
	scale   string
	seed    uint64
	arch    string
	dataset string
	device  string
	jsonOut bool
	verbose bool
}

func addCommonFlags(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	fs.StringVar(&c.scale, "scale", "ci", "workload scale: micro, ci, or full")
	fs.Uint64Var(&c.seed, "seed", 1, "master seed")
	fs.StringVar(&c.arch, "arch", "vgg", "architecture: vgg, resnet, mobilenet, tiny-vgg, tiny-resnet")
	fs.StringVar(&c.dataset, "dataset", "c10", "dataset: c10 or c100")
	fs.StringVar(&c.device, "device", "rpi3", "hardware backend (see `tbnet info` for the registry)")
	fs.BoolVar(&c.jsonOut, "json", false, "machine-readable JSON output")
	fs.BoolVar(&c.verbose, "v", false, "verbose progress logging")
	return c
}

// resolveDevice looks the -device flag up in the registry.
func (c *commonFlags) resolveDevice() (tbnet.Device, error) {
	return tbnet.DeviceByName(c.device)
}

// deployAt places a finalized model at the selected serving precision. The
// -precision flag is parsed (and rejected with a usage error) before any
// pipeline builds, so callers hand in the parsed form.
func deployAt(tb *tbnet.TwoBranch, device tbnet.Device, shape []int, p tbnet.Precision) (*tbnet.Deployment, error) {
	if p == tbnet.PrecisionInt8 {
		return tbnet.DeployInt8(tb, device, shape)
	}
	return tbnet.Deploy(tb, device, shape)
}

// pipelineOptions maps the CLI flags onto the functional-options surface.
func (c *commonFlags) pipelineOptions(stderr io.Writer) ([]tbnet.PipelineOption, error) {
	opts := []tbnet.PipelineOption{
		tbnet.WithArch(c.arch),
		tbnet.WithDataset(c.dataset),
		tbnet.WithSeed(c.seed),
	}
	switch c.scale {
	case "micro":
		opts = append(opts,
			tbnet.WithDatasetSize(60, 30),
			tbnet.WithEpochs(2, 2, 1),
			tbnet.WithPruning(1.0, 1),
			tbnet.WithHyperparams(0.05, 5e-4),
		)
	case "ci":
		// pipeline defaults are the CI scale
	case "full":
		opts = append(opts,
			tbnet.WithDatasetSize(240, 160),
			tbnet.WithEpochs(14, 14, 2),
			tbnet.WithPruning(0.12, 5),
		)
	default:
		return nil, fmt.Errorf("unknown scale %q (want micro, ci, or full)", c.scale)
	}
	if c.verbose {
		opts = append(opts, tbnet.WithLogger(stderr))
	}
	return opts, nil
}

func runPipelineCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pipeline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := addCommonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	opts, err := c.pipelineOptions(stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	device, err := c.resolveDevice()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	p, err := tbnet.NewPipeline(opts...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	res, err := p.Run(context.Background())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Deploy the finalized model on the selected backend and meter one
	// single-image inference, so the pipeline summary carries the modeled
	// hardware story alongside the accuracy one.
	dep, err := tbnet.Deploy(res.TB, device, []int{1, 3, 16, 16})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	sample := res.Test.Batches(1, []int{0})[0].X
	if _, err := dep.Infer(sample); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if c.jsonOut {
		enc := json.NewEncoder(stdout)
		if err := enc.Encode(struct {
			Arch        string  `json:"arch"`
			Dataset     string  `json:"dataset"`
			Device      string  `json:"device"`
			VictimAcc   float64 `json:"victim_acc"`
			TBAcc       float64 `json:"tbnet_acc"`
			PruneIters  int     `json:"prune_iterations"`
			SecureBytes int64   `json:"peak_secure_bytes"`
			LatencySec  float64 `json:"latency_sec"`
		}{c.arch, c.dataset, device.Name(), res.VictimAcc, res.TBAcc,
			res.PruneRes.Iterations, dep.SecureBytes, dep.Latency()}); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "victim accuracy: %s\n", report.Pct(res.VictimAcc))
	fmt.Fprintf(stdout, "TBNet accuracy:  %s\n", report.Pct(res.TBAcc))
	fmt.Fprintf(stdout, "pruning iterations applied: %d\n", res.PruneRes.Iterations)
	fmt.Fprintf(stdout, "deployed on %s: %s secure memory, %.6fs modeled single-image latency\n",
		device.Name(), report.Bytes(dep.SecureBytes), dep.Latency())
	for _, h := range res.PruneRes.History {
		status := "kept"
		if h.Reverted {
			status = "reverted"
		}
		fmt.Fprintf(stdout, "  iter %d: %d prunable channels, acc %s (%s)\n",
			h.Iter, h.TotalChannels, report.Pct(h.Acc), status)
	}
	return 0
}

func runServeCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := addCommonFlags(fs)
	workers := fs.Int("workers", 4, "replicated enclave sessions per model")
	batch := fs.Int("batch", 8, "micro-batch flush size")
	delay := fs.Duration("delay", 2*time.Millisecond, "micro-batch flush delay")
	requests := fs.Int("requests", 64, "synthetic requests to serve")
	models := fs.String("models", "", "serve saved models: name=artifact.tbd or registry names (comma-separated)")
	regDir := fs.String("registry", "", "model registry directory for bare -models names")
	precision := fs.String("precision", "f32", "serving precision in pipeline mode: f32 or int8")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *batch < 1 || *delay <= 0 || *requests < 1 {
		fmt.Fprintf(stderr,
			"invalid serve flags: workers %d, batch %d, delay %v, requests %d\n",
			*workers, *batch, *delay, *requests)
		return 2
	}
	prec, err := tbnet.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// The served models: saved artifacts (-models/-registry) or one freshly
	// trained pipeline. Artifact mode serves random noise inputs (no dataset
	// ships with an artifact) and spreads traffic across the hosted models;
	// pipeline mode keeps the accuracy-checked closed loop.
	var dep *tbnet.Deployment
	var extra []namedDep
	var sample func(i int) *tbnet.Tensor
	var checkLabel func(i, label int) bool
	if *models != "" {
		device, err := explicitDevice(fs, c)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		deps, err := parseModelList(*models, *regDir, device)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		dep, extra = deps[0].dep, deps[1:]
		shape := dep.SampleShape()
		shape[0] = 1
		rng := tbnet.NewRNG(c.seed)
		pool := make([]*tbnet.Tensor, 256)
		for i := range pool {
			x := tbnet.NewTensor(shape...)
			rng.FillNormal(x, 0, 1)
			pool[i] = x
		}
		sample = func(i int) *tbnet.Tensor { return pool[i%len(pool)] }
		checkLabel = func(int, int) bool { return false }
	} else {
		opts, err := c.pipelineOptions(stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		device, err := c.resolveDevice()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		p, err := tbnet.NewPipeline(opts...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "building %s/%s pipeline at %s scale...\n", c.arch, c.dataset, c.scale)
		res, err := p.Run(context.Background())
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		dep, err = deployAt(res.TB, device, []int{1, 3, 16, 16}, prec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		test := res.Test
		singles := test.Batches(1, nil)
		sample = func(i int) *tbnet.Tensor { return singles[i%len(singles)].X }
		checkLabel = func(i, label int) bool { return label == test.Y[i%test.Len()] }
	}
	srv, err := tbnet.Serve(dep,
		tbnet.WithWorkers(*workers),
		tbnet.WithMaxBatch(*batch),
		tbnet.WithMaxDelay(*delay),
	)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer srv.Close()
	for _, m := range extra {
		if err := srv.AddModel(m.name, m.dep); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	hosted := srv.Models()

	// Closed-loop synthetic clients; with several hosted models the traffic
	// round-robins across them.
	fmt.Fprintf(stderr, "serving %d requests over %d workers × %d model(s) (batch ≤%d, delay %v)...\n",
		*requests, *workers, len(hosted), *batch, *delay)
	var wg sync.WaitGroup
	var mu sync.Mutex
	correct, failed := 0, 0
	clients := 4 * (*workers)
	work := make(chan int)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				label, err := srv.InferModel(context.Background(), hosted[i%len(hosted)], sample(i))
				mu.Lock()
				if err != nil {
					failed++
				} else if checkLabel(i, label) {
					correct++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	st := srv.Stats()

	if c.jsonOut {
		// The stats struct's own JSON tags are the stable artifact names;
		// the CLI only adds its client-side accuracy count.
		if err := json.NewEncoder(stdout).Encode(struct {
			tbnet.ServerStats
			Correct int `json:"correct"`
		}{st, correct}); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "served %d requests (%d failed), accuracy %s\n",
		st.Requests, failed, report.Pct(float64(correct)/float64(*requests)))
	fmt.Fprintf(stdout, "  device:             %s (peak secure memory %s)\n",
		st.Device, report.Bytes(st.PeakSecureBytes))
	fmt.Fprintf(stdout, "  workers:            %d\n", st.Workers)
	fmt.Fprintf(stdout, "  batches:            %d (mean %.2f, largest %d)\n",
		st.Batches, st.MeanBatch, st.LargestBatch)
	fmt.Fprintf(stdout, "  modeled latency:    p50 %.4fs  p99 %.4fs\n", st.P50Latency, st.P99Latency)
	fmt.Fprintf(stdout, "  modeled throughput: %.1f req/s on the simulated device\n",
		st.ModeledThroughput)
	fmt.Fprintf(stdout, "  wall time:          %.2fs\n", st.WallSeconds)
	return 0
}

// deviceSpec is one parsed -devices entry: a registered backend name and its
// static pool width.
type deviceSpec struct {
	name    string
	workers int
}

// parseDeviceSpecs parses a name:workers list like
// "rpi3:2,sgx-desktop:4,jetson-tz:2". A bare name gets the default pool
// width of 2. Names and widths are validated here, before the (potentially
// minutes-long) pipeline trains, so a typo fails fast with the usual
// flag-error exit.
func parseDeviceSpecs(list string) ([]deviceSpec, error) {
	var specs []deviceSpec
	for _, spec := range strings.Split(list, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, workers := spec, 2
		if at := strings.LastIndex(spec, ":"); at >= 0 {
			n, err := strconv.Atoi(spec[at+1:])
			if err != nil {
				return nil, fmt.Errorf("device spec %q: workers %q is not a number", spec, spec[at+1:])
			}
			name, workers = spec[:at], n
		}
		if _, err := tbnet.DeviceByName(name); err != nil {
			return nil, fmt.Errorf("device spec %q: %w", spec, err)
		}
		if workers < 1 {
			return nil, fmt.Errorf("device spec %q: workers %d < 1", spec, workers)
		}
		specs = append(specs, deviceSpec{name: name, workers: workers})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty device list")
	}
	return specs, nil
}

// deviceOpts turns parsed device specs into WithDevice options. A positive
// override replaces every spec's width — the static legs of an autoscale
// sweep pin all nodes to one width.
func deviceOpts(specs []deviceSpec, override int) []tbnet.FleetOption {
	opts := make([]tbnet.FleetOption, 0, len(specs))
	for _, s := range specs {
		w := s.workers
		if override > 0 {
			w = override
		}
		opts = append(opts, tbnet.WithDevice(s.name, w))
	}
	return opts
}

// parseFleetDevices parses the -devices flag straight into WithDevice options.
func parseFleetDevices(list string) ([]tbnet.FleetOption, error) {
	specs, err := parseDeviceSpecs(list)
	if err != nil {
		return nil, err
	}
	return deviceOpts(specs, 0), nil
}

// fleetPolicy maps the -policy flag onto a fleet option: one of the built-in
// routing policies, or "ewma", which also installs the online latency
// estimator the adaptive policy learns from.
func fleetPolicy(name string) (tbnet.FleetOption, error) {
	switch name {
	case "round-robin":
		return tbnet.WithPolicy(tbnet.RoundRobin()), nil
	case "least-loaded":
		return tbnet.WithPolicy(tbnet.LeastLoaded()), nil
	case "cost-aware":
		return tbnet.WithPolicy(tbnet.CostAware()), nil
	case "ewma":
		return tbnet.WithEWMARouting(0), nil
	}
	return nil, fmt.Errorf("unknown policy %q (want round-robin, least-loaded, cost-aware, or ewma)", name)
}

func runFleetCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := addCommonFlags(fs)
	devices := fs.String("devices", "rpi3:2,sgx-desktop:2,jetson-tz:2",
		"attached devices as name:workers pairs")
	policyName := fs.String("policy", "cost-aware", "routing policy: round-robin, least-loaded, cost-aware, ewma")
	requests := fs.Int("requests", 64, "synthetic requests to offer")
	rate := fs.Float64("rate", 200, "open-loop arrival rate (req/s)")
	poisson := fs.Bool("poisson", false, "exponential (Poisson-process) interarrival times")
	deadline := fs.Duration("deadline", 0, "per-request deadline (0 = none); overdue requests are shed")
	maxInFlight := fs.Int("max-inflight", 0, "fleet-wide in-flight cap (0 = capacity-weighted default)")
	auto := fs.Bool("autoscale", false, "run the elastic autoscaler over the fleet")
	autoMin := fs.Int("autoscale-min", 1, "autoscaler per-node worker floor")
	autoMax := fs.Int("autoscale-max", 8, "autoscaler per-node worker ceiling")
	autoInterval := fs.Duration("autoscale-interval", 50*time.Millisecond, "autoscaler control-loop period")
	pace := fs.Float64("pace", 0, "pace workers at modeled-latency × this factor (0 = off)")
	precision := fs.String("precision", "f32", "serving precision: f32 or int8")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *requests < 1 || *rate <= 0 || *deadline < 0 || *maxInFlight < 0 || *pace < 0 {
		fmt.Fprintf(stderr, "invalid fleet flags: requests %d, rate %g, deadline %v, max-inflight %d, pace %g\n",
			*requests, *rate, *deadline, *maxInFlight, *pace)
		return 2
	}
	if *auto && (*autoMin < 1 || *autoMax < *autoMin || *autoInterval <= 0) {
		fmt.Fprintf(stderr, "invalid autoscale flags: min %d, max %d, interval %v\n",
			*autoMin, *autoMax, *autoInterval)
		return 2
	}
	prec, err := tbnet.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fleetOpts, err := parseFleetDevices(*devices)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	policyOpt, err := fleetPolicy(*policyName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fleetOpts = append(fleetOpts, policyOpt)
	if *deadline > 0 {
		fleetOpts = append(fleetOpts, tbnet.WithDeadline(*deadline))
	}
	if *maxInFlight > 0 {
		fleetOpts = append(fleetOpts, tbnet.WithMaxInFlight(*maxInFlight))
	}
	if *pace > 0 {
		fleetOpts = append(fleetOpts, tbnet.WithPace(*pace))
	}
	if *auto {
		fleetOpts = append(fleetOpts,
			tbnet.WithAutoscale(*autoMin, *autoMax),
			tbnet.WithAutoscaleInterval(*autoInterval))
	}
	opts, err := c.pipelineOptions(stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	device, err := c.resolveDevice()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	p, err := tbnet.NewPipeline(opts...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stderr, "building %s/%s pipeline at %s scale...\n", c.arch, c.dataset, c.scale)
	res, err := p.Run(context.Background())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	dep, err := deployAt(res.TB, device, []int{1, 3, 16, 16}, prec)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	f, err := tbnet.NewFleet(dep, fleetOpts...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()

	// Open-loop synthetic load: requests arrive on their own clock — fixed
	// intervals of 1/rate, or exponential interarrivals for a Poisson process
	// — whether or not earlier ones have finished, so overload is reachable
	// and shedding observable (unlike a closed loop, which self-throttles).
	test := res.Test
	singles := test.Batches(1, nil)
	rng := rand.New(rand.NewSource(int64(c.seed)))
	mean := 1 / *rate
	fmt.Fprintf(stderr, "offering %d requests at %.0f req/s (%s arrivals) under %q routing...\n",
		*requests, *rate, map[bool]string{true: "poisson", false: "uniform"}[*poisson], *policyName)
	var wg sync.WaitGroup
	var mu sync.Mutex
	correct, shed, failed := 0, 0, 0
	next := time.Now()
	for i := 0; i < *requests; i++ {
		step := mean
		if *poisson {
			step = mean * rng.ExpFloat64()
		}
		next = next.Add(time.Duration(step * float64(time.Second)))
		time.Sleep(time.Until(next))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			label, err := f.Infer(context.Background(), singles[i%len(singles)].X)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				if label == test.Y[i%test.Len()] {
					correct++
				}
			case errors.Is(err, tbnet.ErrOverloaded):
				shed++
			default:
				failed++
			}
		}(i)
	}
	wg.Wait()
	st := f.Stats()
	ctl := tbnet.FleetAutoscaler(f)

	if c.jsonOut {
		if ctl != nil {
			// The flat fleet snapshot plus one nested autoscale object — the
			// static shape stays byte-compatible with autoscaling off.
			if err := json.NewEncoder(stdout).Encode(struct {
				tbnet.FleetStats
				Autoscale tbnet.AutoscaleStats `json:"autoscale"`
			}{st, ctl.Stats()}); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			return 0
		}
		if err := report.RenderFleetStatsJSON(stdout, st); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	report.FleetTable(st).Render(stdout)
	if ctl != nil {
		report.AutoscaleTable(ctl.Stats(), f.WorkerSeconds()).Render(stdout)
		if evs := ctl.Events(); len(evs) > 0 {
			report.AutoscaleEventTable(evs).Render(stdout)
		}
	}
	fmt.Fprintf(stdout, "offered %d requests: %d served (%d correct), %d shed, %d failed\n",
		*requests, st.Requests, correct, shed, failed)
	fmt.Fprintf(stdout, "fleet secure footprint: %s across %d devices\n",
		report.Bytes(st.PeakSecureBytes), st.Devices)
	return 0
}

func runExperimentCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := addCommonFlags(fs)
	if len(args) < 1 || args[0] == "-h" || args[0] == "-help" {
		usage(stderr)
		return 2
	}
	which := args[0]
	if !knownExperiment(which) {
		fmt.Fprintf(stderr, "unknown experiment %q\n", which)
		return 2
	}
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	device, err := c.resolveDevice()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cfg := experiments.Config{Seed: c.seed, Device: device}
	switch c.scale {
	case "micro":
		cfg.Scale = experiments.MicroScale()
	case "ci":
		cfg.Scale = experiments.CIScale()
	case "full":
		cfg.Scale = experiments.FullScale()
	default:
		fmt.Fprintf(stderr, "unknown scale %q (want micro, ci, or full)\n", c.scale)
		return 2
	}
	if c.verbose {
		cfg.Log = stderr
	}
	return renderExperiment(experiments.NewLab(cfg), which, c.jsonOut, stdout, stderr)
}

func knownExperiment(which string) bool {
	switch which {
	case "all", "table1", "table2", "table3", "fig2", "fig3", "fig4", "hw",
		"quant", "fleet", "secdefense", "ablation", "ablation-ranking",
		"ablation-rollback", "ablation-lambda", "ablation-quant":
		return true
	}
	return false
}

func renderExperiment(lab *experiments.Lab, which string, jsonOut bool, w, stderr io.Writer) int {
	render := func(t *report.Table) int {
		if jsonOut {
			if err := t.RenderJSON(w); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			return 0
		}
		t.Render(w)
		return 0
	}
	switch which {
	case "all":
		if jsonOut {
			fmt.Fprintln(stderr, "-json is per-artifact; run each experiment separately")
			return 2
		}
		lab.RunAll(w)
	case "table1":
		return render(lab.Table1())
	case "table2":
		return render(lab.Table2())
	case "table3":
		return render(lab.Table3())
	case "fig2":
		title := "Fig. 2: attacker fine-tuning M_R of VGG18-S under varying data availability"
		if jsonOut {
			if err := report.RenderSeriesJSON(w, title, lab.Fig2()); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			return 0
		}
		report.RenderSeries(w, title, lab.Fig2())
	case "fig3":
		return render(lab.Fig3())
	case "hw":
		return render(lab.TableHW())
	case "quant":
		return render(lab.TableQuant())
	case "fleet":
		return render(lab.TableFleet())
	case "secdefense":
		return render(lab.TableSecDefense())
	case "fig4":
		mr, mt := lab.Fig4()
		if jsonOut {
			if err := mr.RenderJSON(w, "M_R |gamma|"); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if err := mt.RenderJSON(w, "M_T |gamma|"); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			return 0
		}
		fmt.Fprintln(w, "Fig. 4: BN weight distributions after knowledge transfer (VGG18-S/SynthC10)")
		mr.Render(w, "M_R |gamma|", 40)
		mt.Render(w, "M_T |gamma|", 40)
		fmt.Fprintf(w, "mean |gamma|: M_R %.4f vs M_T %.4f\n", mr.Mean(), mt.Mean())
	case "ablation":
		return render(lab.Ablation())
	case "ablation-ranking":
		return render(lab.AblationPruneRanking())
	case "ablation-rollback":
		return render(lab.AblationRollback())
	case "ablation-lambda":
		return render(lab.AblationLambda())
	case "ablation-quant":
		return render(lab.AblationQuant())
	}
	return 0
}

func runInfoCmd(w io.Writer) int {
	for _, d := range tbnet.Devices() {
		fmt.Fprintf(w, "device: %s\n", d.Name())
		if cm, ok := d.(interface{ Describe() string }); ok {
			fmt.Fprintf(w, "  hardware:         %s\n", cm.Describe())
		}
		fmt.Fprintf(w, "  REE throughput:   %.2g FLOP/s\n", d.REEFlopsPerSec())
		fmt.Fprintf(w, "  TEE throughput:   %.2g FLOP/s\n", d.TEEFlopsPerSec())
		fmt.Fprintf(w, "  switch cost:      %.0fµs\n", d.SwitchSeconds()*1e6)
		fmt.Fprintf(w, "  transfer BW:      %.2g B/s\n", d.TransferBytesPerSec())
		fmt.Fprintf(w, "  secure memory:    %s\n", report.Bytes(d.SecureMemBytes()))
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  tbnet experiment <all|table1|table2|table3|fig2|fig3|fig4|hw|quant|fleet|secdefense|
                    ablation|ablation-ranking|ablation-rollback|ablation-lambda|ablation-quant>
                   [-scale micro|ci|full] [-seed N] [-device NAME] [-json] [-v]
  tbnet pipeline [-arch vgg|resnet|mobilenet|tiny-vgg|tiny-resnet]
                 [-dataset c10|c100] [-scale micro|ci|full] [-seed N]
                 [-device NAME] [-json] [-v]
  tbnet save     (-out FILE | -registry DIR [-name NAME]) [-int8]
                 [-arch ...] [-dataset ...] [-scale ...] [-seed N]
                 [-device NAME] [-json] [-v]
  tbnet load     (-in FILE | -registry DIR [-name NAME])
                 [-device NAME] [-json]    # no -name: list the registry
  tbnet serve    [-workers N] [-batch N] [-delay D] [-requests N] [-precision f32|int8]
                 [-models NAME=FILE,... | -models NAME,... -registry DIR]
                 [-arch ...] [-dataset ...] [-scale ...] [-seed N]
                 [-device NAME] [-json] [-v]
  tbnet fleet    [-devices NAME:W,NAME:W,...] [-policy round-robin|least-loaded|cost-aware|ewma]
                 [-requests N] [-rate R] [-poisson] [-deadline D] [-max-inflight N]
                 [-autoscale [-autoscale-min N] [-autoscale-max N] [-autoscale-interval D]]
                 [-pace S] [-precision f32|int8]
                 [-arch ...] [-dataset ...] [-scale ...] [-seed N] [-json] [-v]
  tbnet scenario [-devices NAME:W,...] [-policy ...] [-deadline D] [-max-inflight N]
                 [-spec name:pattern:rate:dur[:peak[:period]],...] [-trace FILE]
                 [-models NAME=FILE,... | -models NAME,... -registry DIR]
                 [-autoscale [-autoscale-min N] [-autoscale-max N] [-autoscale-interval D]]
                 [-pace S] [-precision f32|int8]
                 [-attack] [-obfuscate SPEC]    # replay the arch-inference attack on live traces
                 [-sweep W,W,...]               # static-vs-autoscale comparison
                 [-target URL [-api-key KEY]]   # client mode: load-test a running tbnetd over HTTP
                 [-trace-out FILE]              # dump per-request span timelines after the run
                 [-arch ...] [-dataset ...] [-scale ...] [-seed N] [-json] [-v]
  tbnet info     # list the registered hardware backends
  tbnet version  # print the release and Go toolchain versions`)
}
