package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"tbnet"
	"tbnet/internal/report"
)

// runSaveCmd implements `tbnet save`: run the pipeline, deploy the finalized
// model on the selected backend, and persist the deployment artifact — to a
// file (-out) or into a named registry entry (-registry/-name).
func runSaveCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("save", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := addCommonFlags(fs)
	out := fs.String("out", "", "artifact file to write (exclusive with -registry)")
	regDir := fs.String("registry", "", "model registry directory to save into")
	name := fs.String("name", "", "registry entry name (default the architecture name)")
	int8Flag := fs.Bool("int8", false, "quantize to int8 and save the quantized serving artifact")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*out == "") == (*regDir == "") {
		fmt.Fprintln(stderr, "save: exactly one of -out FILE or -registry DIR is required")
		return 2
	}
	opts, err := c.pipelineOptions(stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	device, err := c.resolveDevice()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	p, err := tbnet.NewPipeline(opts...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stderr, "building %s/%s pipeline at %s scale...\n", c.arch, c.dataset, c.scale)
	res, err := p.Run(context.Background())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var dep *tbnet.Deployment
	if *int8Flag {
		dep, err = tbnet.DeployInt8(res.TB, device, []int{1, 3, 16, 16})
	} else {
		dep, err = tbnet.Deploy(res.TB, device, []int{1, 3, 16, 16})
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	summary := struct {
		Path        string  `json:"path,omitempty"`
		Registry    string  `json:"registry,omitempty"`
		Name        string  `json:"name,omitempty"`
		SHA256      string  `json:"sha256,omitempty"`
		SizeBytes   int64   `json:"size_bytes,omitempty"`
		Device      string  `json:"device"`
		Precision   string  `json:"precision"`
		TBAcc       float64 `json:"tbnet_acc"`
		SecureBytes int64   `json:"peak_secure_bytes"`
	}{Device: device.Name(), Precision: string(dep.Precision()),
		TBAcc: res.TBAcc, SecureBytes: dep.SecureBytes}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := tbnet.SaveDeployment(f, dep); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		info, err := os.Stat(*out)
		if err == nil {
			summary.SizeBytes = info.Size()
		}
		summary.Path = *out
	} else {
		if *name == "" {
			*name = c.arch
		}
		reg, err := tbnet.OpenRegistry(*regDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		entry, err := reg.Save(*name, dep)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		summary.Registry, summary.Name = *regDir, *name
		summary.SHA256, summary.SizeBytes = entry.SHA256, entry.SizeBytes
	}

	if c.jsonOut {
		if err := json.NewEncoder(stdout).Encode(summary); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	where := summary.Path
	if where == "" {
		where = fmt.Sprintf("%s (registry %s, sha256 %s…)", summary.Name, summary.Registry, summary.SHA256[:12])
	}
	fmt.Fprintf(stdout, "saved deployment to %s\n", where)
	fmt.Fprintf(stdout, "  device:        %s\n", summary.Device)
	fmt.Fprintf(stdout, "  precision:     %s\n", summary.Precision)
	fmt.Fprintf(stdout, "  TBNet acc:     %s\n", report.Pct(summary.TBAcc))
	fmt.Fprintf(stdout, "  artifact size: %s\n", report.Bytes(summary.SizeBytes))
	fmt.Fprintf(stdout, "  secure memory: %s\n", report.Bytes(summary.SecureBytes))
	return 0
}

// runLoadCmd implements `tbnet load`: bring a saved deployment back up from
// a file or a registry entry (integrity-checked), run one probe inference,
// and report the placement. With -registry and no -name it lists the store.
func runLoadCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "artifact file to load (exclusive with -registry)")
	regDir := fs.String("registry", "", "model registry directory to load from")
	name := fs.String("name", "", "registry entry name (omit to list the registry)")
	deviceName := fs.String("device", "", "re-target the deployment onto this backend (default: the saved device)")
	jsonOut := fs.Bool("json", false, "machine-readable JSON output")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*in == "") == (*regDir == "") {
		fmt.Fprintln(stderr, "load: exactly one of -in FILE or -registry DIR is required")
		return 2
	}
	var device tbnet.Device
	if *deviceName != "" {
		d, err := tbnet.DeviceByName(*deviceName)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		device = d
	}

	// Registry listing mode.
	if *regDir != "" && *name == "" {
		reg, err := tbnet.OpenRegistry(*regDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		entries, err := reg.List()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if *jsonOut {
			if err := json.NewEncoder(stdout).Encode(entries); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			return 0
		}
		if len(entries) == 0 {
			fmt.Fprintf(stdout, "registry %s is empty\n", *regDir)
			return 0
		}
		for _, e := range entries {
			prec := e.Precision
			if prec == "" {
				prec = "f32"
			}
			fmt.Fprintf(stdout, "%-20s device=%-12s precision=%-5s shape=%v sha256=%s… %s\n",
				e.Name, e.Device, prec, e.SampleShape, e.SHA256[:12], report.Bytes(e.SizeBytes))
		}
		return 0
	}

	var dep *tbnet.Deployment
	var err error
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			fmt.Fprintln(stderr, ferr)
			return 1
		}
		dep, err = tbnet.LoadDeploymentOn(f, device)
		f.Close()
	} else {
		var reg *tbnet.Registry
		reg, err = tbnet.OpenRegistry(*regDir)
		if err == nil {
			dep, err = reg.LoadOn(*name, device)
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// One probe inference confirms the restored plan actually serves and
	// meters the modeled single-image latency on the (possibly re-targeted)
	// backend.
	shape := dep.SampleShape()
	shape[0] = 1
	probe := tbnet.NewTensor(shape...)
	if _, err := dep.Infer(probe); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *jsonOut {
		if err := json.NewEncoder(stdout).Encode(struct {
			Device      string  `json:"device"`
			Precision   string  `json:"precision"`
			SampleShape []int   `json:"sample_shape"`
			SecureBytes int64   `json:"peak_secure_bytes"`
			LatencySec  float64 `json:"latency_sec"`
		}{dep.Device.Name(), string(dep.Precision()), dep.SampleShape(),
			dep.SecureBytes, dep.Latency()}); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "loaded %s deployment on %s: shape %v, %s secure memory, %.6fs modeled single-image latency\n",
		dep.Precision(), dep.Device.Name(), dep.SampleShape(), report.Bytes(dep.SecureBytes), dep.Latency())
	return 0
}
