package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"sort"

	"tbnet"
	"tbnet/internal/fleet"
	"tbnet/internal/report"
	"tbnet/internal/scenario"
	"tbnet/internal/seceval"
)

// defaultSpec is the scenario the CLI runs when -spec is not given: a
// warm-up, a flash crowd, a linear load ramp, and a compressed diurnal
// cycle — a few seconds of wall time that sweeps the fleet through its
// serving regimes.
const defaultSpec = "warmup:uniform:120:1s," +
	"burst:burst:120:2s:480:1s," +
	"ramp:ramp:120:1500ms:420," +
	"diurnal:diurnal:100:2s:320:1s"

// namedDep is one model the scenario serves: its serving name and its
// deployment template.
type namedDep struct {
	name string
	dep  *tbnet.Deployment
}

// parseModelList loads the -models flag: comma-separated entries, each
// either "name=artifact.tbd" (loaded from the file) or a bare "name"
// (loaded from -registry). A non-nil device re-targets every loaded
// artifact onto that backend (an explicit -device flag); nil keeps each
// artifact's saved device.
func parseModelList(list, regDir string, device tbnet.Device) ([]namedDep, error) {
	var reg *tbnet.Registry
	var out []namedDep
	for _, spec := range strings.Split(list, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, path := spec, ""
		if at := strings.IndexByte(spec, '='); at >= 0 {
			name, path = spec[:at], spec[at+1:]
		}
		if name == "" {
			return nil, fmt.Errorf("model spec %q: empty name", spec)
		}
		var dep *tbnet.Deployment
		var err error
		if path != "" {
			var f *os.File
			if f, err = os.Open(path); err == nil {
				dep, err = tbnet.LoadDeploymentOn(f, device)
				f.Close()
			}
		} else {
			if regDir == "" {
				return nil, fmt.Errorf("model spec %q names a registry entry but -registry is not set", spec)
			}
			if reg == nil {
				if reg, err = tbnet.OpenRegistry(regDir); err != nil {
					return nil, err
				}
			}
			dep, err = reg.LoadOn(name, device)
		}
		if err != nil {
			return nil, fmt.Errorf("model %q: %w", name, err)
		}
		out = append(out, namedDep{name: name, dep: dep})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty model list")
	}
	return out, nil
}

// explicitDevice resolves the -device flag only if the user actually set it
// (artifact mode defaults to each artifact's saved device, so the flag's
// "rpi3" default must not silently re-target loaded models).
func explicitDevice(fs *flag.FlagSet, c *commonFlags) (tbnet.Device, error) {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "device" {
			set = true
		}
	})
	if !set {
		return nil, nil
	}
	return c.resolveDevice()
}

// parseScenarioSpec parses the -spec phase DSL: comma-separated phases, each
//
//	name:pattern:rate:duration[:peak[:period]]
//
// with pattern one of uniform|poisson|burst|ramp|diurnal. Everything is
// validated here, before the (potentially minutes-long) model build.
func parseScenarioSpec(spec string) ([]scenario.Phase, error) {
	var phases []scenario.Phase
	for _, ps := range strings.Split(spec, ",") {
		ps = strings.TrimSpace(ps)
		if ps == "" {
			continue
		}
		parts := strings.Split(ps, ":")
		if len(parts) < 4 || len(parts) > 6 {
			return nil, fmt.Errorf("phase %q: want name:pattern:rate:duration[:peak[:period]]", ps)
		}
		switch scenario.Pattern(parts[1]) {
		case scenario.Uniform, scenario.Poisson, scenario.Burst, scenario.Ramp, scenario.Diurnal:
		default:
			return nil, fmt.Errorf("phase %q: unknown pattern %q (want uniform, poisson, burst, ramp, or diurnal)",
				ps, parts[1])
		}
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("phase %q: bad rate %q", ps, parts[2])
		}
		dur, err := time.ParseDuration(parts[3])
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("phase %q: bad duration %q", ps, parts[3])
		}
		ph := scenario.Phase{
			Name:     parts[0],
			Pattern:  scenario.Pattern(parts[1]),
			Rate:     rate,
			Duration: dur,
		}
		if len(parts) >= 5 {
			peak, err := strconv.ParseFloat(parts[4], 64)
			if err != nil {
				return nil, fmt.Errorf("phase %q: bad peak rate %q", ps, parts[4])
			}
			ph.PeakRate = peak
		}
		if len(parts) == 6 {
			period, err := time.ParseDuration(parts[5])
			if err != nil {
				return nil, fmt.Errorf("phase %q: bad period %q", ps, parts[5])
			}
			ph.Period = period
		}
		// Full semantic validation (peak below base rate, bad period, ...)
		// happens now, not inside scenario.Run after the model build.
		if err := ph.Validate(); err != nil {
			return nil, fmt.Errorf("phase %q: %w", ps, err)
		}
		phases = append(phases, ph)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("empty scenario spec")
	}
	return phases, nil
}

// runScenarioCmd implements `tbnet scenario`: assemble a fleet (from saved
// artifacts or a freshly built pipeline), drive it through a phased workload
// — synthesized patterns or a replayed trace — and report per-phase latency,
// shed, and per-model throughput.
func runScenarioCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := addCommonFlags(fs)
	devices := fs.String("devices", "rpi3:2,sgx-desktop:2,jetson-tz:2",
		"attached devices as name:workers pairs")
	policyName := fs.String("policy", "cost-aware", "routing policy: round-robin, least-loaded, cost-aware, ewma")
	deadline := fs.Duration("deadline", 0, "per-request deadline (0 = none); overdue requests are shed")
	maxInFlight := fs.Int("max-inflight", 0, "fleet-wide in-flight cap (0 = capacity-weighted default)")
	models := fs.String("models", "", "serve saved models: name=artifact.tbd or registry names (comma-separated)")
	regDir := fs.String("registry", "", "model registry directory for bare -models names")
	spec := fs.String("spec", defaultSpec, "phases as name:pattern:rate:duration[:peak[:period]]")
	traceFile := fs.String("trace", "", "replay an arrival trace file instead of -spec")
	target := fs.String("target", "", "drive a running tbnetd daemon at this base URL over HTTP (client mode)")
	apiKey := fs.String("api-key", "", "API key sent to a -target daemon with auth enabled")
	auto := fs.Bool("autoscale", false, "run the elastic autoscaler over the fleet")
	autoMin := fs.Int("autoscale-min", 1, "autoscaler per-node worker floor")
	autoMax := fs.Int("autoscale-max", 8, "autoscaler per-node worker ceiling")
	autoInterval := fs.Duration("autoscale-interval", 50*time.Millisecond, "autoscaler control-loop period")
	pace := fs.Float64("pace", 0, "pace workers at modeled-latency × this factor (0 = off)")
	sweepList := fs.String("sweep", "", "also run the same workload at these static widths (comma-separated worker counts) and compare; implies -autoscale")
	traceOut := fs.String("trace-out", "", "write per-request span timelines to this file after the run (local fleet only)")
	attackRun := fs.Bool("attack", false, "capture attacker-visible traces during the run and replay the architecture-inference attack per tenant")
	obfuscate := fs.String("obfuscate", "", "trace-obfuscation chain applied at capture, e.g. pad:4096,shuffle:8,dummy:0.25; implies -attack")
	precision := fs.String("precision", "f32", "serving precision in pipeline mode: f32 or int8")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *deadline < 0 || *maxInFlight < 0 || *pace < 0 {
		fmt.Fprintf(stderr, "invalid scenario flags: deadline %v, max-inflight %d, pace %g\n",
			*deadline, *maxInFlight, *pace)
		return 2
	}
	prec, err := tbnet.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	sweep, err := parseSweepWidths(*sweepList)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(sweep) > 0 {
		*auto = true
	}
	if *auto && (*autoMin < 1 || *autoMax < *autoMin || *autoInterval <= 0) {
		fmt.Fprintf(stderr, "invalid autoscale flags: min %d, max %d, interval %v\n",
			*autoMin, *autoMax, *autoInterval)
		return 2
	}
	if *target != "" && *auto {
		fmt.Fprintln(stderr, "-autoscale/-sweep drive a local fleet; with -target the daemon owns its scaling")
		return 2
	}
	if *traceOut != "" && *target != "" {
		fmt.Fprintln(stderr, "-trace-out records a local fleet's spans; against a -target daemon use GET /debug/trace")
		return 2
	}
	if *traceOut != "" && len(sweep) > 0 {
		fmt.Fprintln(stderr, "-trace-out cannot attribute spans across the fleets of a -sweep comparison")
		return 2
	}
	if *obfuscate != "" {
		*attackRun = true
	}
	if *attackRun && *target != "" {
		fmt.Fprintln(stderr, "-attack taps a local fleet's workers; a -target daemon captures with tbnetd -obfuscate")
		return 2
	}
	if *attackRun && len(sweep) > 0 {
		fmt.Fprintln(stderr, "-attack cannot attribute traces across the fleets of a -sweep comparison")
		return 2
	}
	// The obfuscation chain parses before any model build, like the phase spec.
	chain, err := seceval.ParseChain(*obfuscate)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// Client mode: the target URL is validated here, before any phase parse
	// or model build — a typo in -target is a usage error surfaced in
	// milliseconds, never a failure minutes into a pipeline run.
	var tgt *scenario.HTTPTarget
	if *target != "" {
		if *models != "" {
			fmt.Fprintln(stderr, "-models is meaningless with -target: the daemon already hosts its models")
			return 2
		}
		var terr error
		if tgt, terr = scenario.NewHTTPTarget(*target, scenario.WithAPIKey(*apiKey)); terr != nil {
			fmt.Fprintln(stderr, terr)
			fs.Usage()
			return 2
		}
	}
	specs, err := parseDeviceSpecs(*devices)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	policyOpt, err := fleetPolicy(*policyName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// baseOpts is every leg's shared configuration; the per-leg device widths
	// (and the autoscaled leg's controller) are appended when fleets build.
	baseOpts := []tbnet.FleetOption{policyOpt}
	if *deadline > 0 {
		baseOpts = append(baseOpts, tbnet.WithDeadline(*deadline))
	}
	if *maxInFlight > 0 {
		baseOpts = append(baseOpts, tbnet.WithMaxInFlight(*maxInFlight))
	}
	if *pace > 0 {
		baseOpts = append(baseOpts, tbnet.WithPace(*pace))
	}
	// The span ring outlives the fleet, so the timelines are still readable
	// after the run tears the serving pools down.
	var tracer *tbnet.Tracer
	if *traceOut != "" {
		tracer = tbnet.NewTracer(4096)
		baseOpts = append(baseOpts, tbnet.WithTracing(tracer))
	}
	// The attack tap likewise outlives the fleet: captured views are replayed
	// against each tenant after the run.
	var tap *seceval.Tap
	if *attackRun {
		topts := []seceval.TapOption{seceval.WithSeed(int64(c.seed)), seceval.WithRunLimit(8192)}
		if len(chain.Layers) > 0 {
			topts = append(topts, seceval.WithObfuscation(chain))
		}
		tap = seceval.NewTap(topts...)
		baseOpts = append(baseOpts, tbnet.WithFleetTap(tap))
	}

	// Parse the workload shape first — a typo in the spec or a missing trace
	// file must fail before the (potentially minutes-long) model build.
	var phases []scenario.Phase
	if *traceFile != "" {
		tf, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		arrivals, err := scenario.ParseTrace(tf)
		tf.Close()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		phases = []scenario.Phase{{Name: "replay", Pattern: scenario.Replay, Trace: arrivals}}
	} else {
		phases, err = parseScenarioSpec(*spec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	// Client mode runs here — the workload shape is parsed and the target
	// validated; no local fleet or model build is needed at all.
	if tgt != nil {
		return runScenarioClient(tgt, *target, phases, c, stdout, stderr)
	}

	// The served models: either saved artifacts (-models/-registry) or one
	// freshly trained pipeline. The first model is the fleet's template and
	// serves as the default model; any further ones are hosted by name.
	var deps []namedDep
	sample := func(i int) *tbnet.Tensor { return nil } // replaced below
	if *models != "" {
		device, derr := explicitDevice(fs, c)
		if derr != nil {
			fmt.Fprintln(stderr, derr)
			return 2
		}
		deps, err = parseModelList(*models, *regDir, device)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		// Saved artifacts carry no dataset, so the client load is random
		// noise images of the served shape — the serving stack's behaviour
		// under load does not depend on input content.
		shape := deps[0].dep.SampleShape()
		shape[0] = 1
		rng := tbnet.NewRNG(c.seed)
		pool := make([]*tbnet.Tensor, 256)
		for i := range pool {
			x := tbnet.NewTensor(shape...)
			rng.FillNormal(x, 0, 1)
			pool[i] = x
		}
		sample = func(i int) *tbnet.Tensor { return pool[i%len(pool)] }
	} else {
		opts, err := c.pipelineOptions(stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		p, err := tbnet.NewPipeline(opts...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		device, err := c.resolveDevice()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "building %s/%s pipeline at %s scale...\n", c.arch, c.dataset, c.scale)
		res, err := p.Run(context.Background())
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		dep, err := deployAt(res.TB, device, []int{1, 3, 16, 16}, prec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		deps = []namedDep{{name: c.arch, dep: dep}}
		singles := res.Test.Batches(1, nil)
		sample = func(i int) *tbnet.Tensor { return singles[i%len(singles)].X }
	}

	// Mixed-model traffic shares: the default model plus every named extra,
	// applied to every phase now that the hosted set is known.
	if len(deps) > 1 {
		shares := []scenario.ModelShare{{Name: tbnet.DefaultModel, Weight: 1}}
		for _, m := range deps[1:] {
			shares = append(shares, scenario.ModelShare{Name: m.name, Weight: 1})
		}
		for i := range phases {
			phases[i].Models = shares
		}
	}

	for _, m := range deps[1:] {
		baseOpts = append(baseOpts, tbnet.WithModel(m.name, m.dep))
	}
	autoOpts := []tbnet.FleetOption{
		tbnet.WithAutoscale(*autoMin, *autoMax),
		tbnet.WithAutoscaleInterval(*autoInterval),
	}
	runSpec := scenario.Spec{Name: deps[0].name, Seed: c.seed, Phases: phases}

	// Sweep mode: the autoscaled fleet and each static width face the same
	// workload back to back, one fleet at a time so the legs never contend
	// for the host.
	if len(sweep) > 0 {
		var points []report.AutoscalePoint
		legs := []scenarioLeg{{
			label: fmt.Sprintf("autoscale[%d,%d]", *autoMin, *autoMax),
			opts:  append(append(deviceOpts(specs, 0), baseOpts...), autoOpts...),
			auto:  true,
		}}
		for _, w := range sweep {
			legs = append(legs, scenarioLeg{
				label: fmt.Sprintf("static-%d", w),
				opts:  append(deviceOpts(specs, w), baseOpts...),
			})
		}
		for _, leg := range legs {
			fmt.Fprintf(stderr, "driving %d phase(s) over %q routing, %s...\n",
				len(phases), *policyName, leg.label)
			p, err := runScenarioLeg(leg, deps[0].dep, runSpec, sample)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			points = append(points, p)
		}
		if c.jsonOut {
			if err := report.RenderAutoscaleJSON(stdout, points); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			return 0
		}
		report.AutoscaleSweepTable(points).Render(stdout)
		return 0
	}

	fleetOpts := append(deviceOpts(specs, 0), baseOpts...)
	if *auto {
		fleetOpts = append(fleetOpts, autoOpts...)
	}
	f, err := tbnet.NewFleet(deps[0].dep, fleetOpts...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()

	fmt.Fprintf(stderr, "driving %d phase(s) over %q routing (default model: %s)...\n",
		len(phases), *policyName, deps[0].name)
	res, err := scenario.Run(context.Background(), f, runSpec, sample)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	st := f.Stats()
	ctl := tbnet.FleetAutoscaler(f)
	if tracer != nil {
		if err := writeTraceOut(*traceOut, tracer, c.jsonOut, stderr); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	var atk *attackReport
	if tap != nil {
		if atk, err = buildAttackReport(tap, deps, int64(c.seed)); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	if c.jsonOut {
		// One artifact object: the scenario's per-phase client-side figures
		// plus the fleet's own server-side snapshot — and, when the
		// controller ran, its counters.
		var ast *tbnet.AutoscaleStats
		if ctl != nil {
			s := ctl.Stats()
			ast = &s
		}
		if err := json.NewEncoder(stdout).Encode(struct {
			Scenario  *scenario.Result      `json:"scenario"`
			Fleet     fleet.Stats           `json:"fleet"`
			Autoscale *tbnet.AutoscaleStats `json:"autoscale,omitempty"`
			Attack    *attackReport         `json:"attack,omitempty"`
		}{res, st, ast, atk}); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	report.ScenarioTable(res).Render(stdout)
	if len(res.PerModel) > 1 {
		report.ScenarioModelTable(res).Render(stdout)
	}
	report.FleetTable(st).Render(stdout)
	if ctl != nil {
		report.AutoscaleTable(ctl.Stats(), f.WorkerSeconds()).Render(stdout)
		if evs := ctl.Events(); len(evs) > 0 {
			report.AutoscaleEventTable(evs).Render(stdout)
		}
	}
	if atk != nil {
		report.AttackTable(atk.Tenants).Render(stdout)
		if len(atk.Obfuscation) > 0 {
			obfuscationTable(atk).Render(stdout)
		}
	}
	fmt.Fprintf(stdout, "offered %d requests: %d served, %d shed, %d failed in %.2fs\n",
		res.Offered, res.Served, res.Shed, res.Failed, res.WallSeconds)
	return 0
}

// writeTraceOut dumps every span the run's tracer captured to path — the
// SpanTable text rendering, or with -json the same object shape the daemon's
// GET /debug/trace answers with, so the artifact feeds the same tooling.
func writeTraceOut(path string, tracer *tbnet.Tracer, jsonOut bool, stderr io.Writer) error {
	spans := tbnet.TraceSnapshot(tracer, 0, 0)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if jsonOut {
		err = report.RenderSpansJSON(f, spans)
	} else {
		report.SpanTable(spans).Render(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Fprintf(stderr, "wrote %d request span timeline(s) to %s\n", len(spans), path)
	return nil
}

// scenarioLeg is one configuration in a static-vs-autoscale sweep.
type scenarioLeg struct {
	label string
	opts  []tbnet.FleetOption
	auto  bool
}

// parseSweepWidths parses the -sweep flag: comma-separated static pool
// widths, each at least 1.
func parseSweepWidths(list string) ([]int, error) {
	var widths []int
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		w, err := strconv.Atoi(s)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("sweep width %q: want an integer >= 1", s)
		}
		widths = append(widths, w)
	}
	if list != "" && len(widths) == 0 {
		return nil, fmt.Errorf("empty -sweep list")
	}
	return widths, nil
}

// runScenarioLeg builds one fleet, drives it through the shared workload, and
// condenses the outcome into a sweep point: the worst phase p99 the clients
// saw against the worker-seconds the fleet paid for.
func runScenarioLeg(leg scenarioLeg, dep *tbnet.Deployment, spec scenario.Spec,
	sample func(int) *tbnet.Tensor) (report.AutoscalePoint, error) {
	f, err := tbnet.NewFleet(dep, leg.opts...)
	if err != nil {
		return report.AutoscalePoint{}, fmt.Errorf("%s: %w", leg.label, err)
	}
	defer f.Close()
	res, err := scenario.Run(context.Background(), f, spec, sample)
	if err != nil {
		return report.AutoscalePoint{}, fmt.Errorf("%s: %w", leg.label, err)
	}
	p := report.AutoscalePoint{
		Config:        leg.label,
		Autoscale:     leg.auto,
		WorkerSeconds: f.WorkerSeconds(),
		Offered:       res.Offered,
		Served:        res.Served,
		Shed:          res.Shed,
		Failed:        res.Failed,
	}
	for _, ph := range res.Phases {
		if ph.P99Ms > p.WorstP99Ms {
			p.WorstP99Ms = ph.P99Ms
		}
	}
	if ctl := tbnet.FleetAutoscaler(f); ctl != nil {
		st := ctl.Stats()
		p.ScaleUps, p.ScaleDowns, p.Refused = st.ScaleUps, st.ScaleDowns, st.Refused
	}
	return p, nil
}

// attackReport is the -attack section of the scenario artifact: the
// per-tenant attack outcomes and, with -obfuscate, the per-layer overhead
// spend the tap charged the fleet.
type attackReport struct {
	Tenants         []report.AttackRow   `json:"tenants"`
	Obfuscation     []seceval.LayerStats `json:"obfuscation,omitempty"`
	OverheadSeconds float64              `json:"overhead_seconds"`
}

// buildAttackReport replays the architecture-inference attack against every
// (node, model) tenant's captured runs, with the isolated single-session hit
// rate on the same deployment as each tenant's baseline.
func buildAttackReport(tap *seceval.Tap, deps []namedDep, seed int64) (*attackReport, error) {
	subjects := map[string]seceval.Subject{tbnet.DefaultModel: seceval.SubjectFor(deps[0].dep)}
	depFor := map[string]*tbnet.Deployment{tbnet.DefaultModel: deps[0].dep}
	for _, m := range deps[1:] {
		subjects[m.name] = seceval.SubjectFor(m.dep)
		depFor[m.name] = m.dep
	}
	type tenant struct{ node, model string }
	groups := map[tenant][]seceval.RunRecord{}
	for _, r := range tap.Runs() {
		k := tenant{r.Node, r.Model}
		groups[k] = append(groups[k], r)
	}
	keys := make([]tenant, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].model < keys[j].model
	})
	rep := &attackReport{Obfuscation: tap.OverheadStats(), OverheadSeconds: tap.OverheadSeconds()}
	isolated := map[string]float64{}
	for _, k := range keys {
		subj, ok := subjects[k.model]
		if !ok {
			continue
		}
		iso, ok := isolated[k.model]
		if !ok {
			views, _, err := seceval.CaptureIsolated(depFor[k.model], 3, seed)
			if err != nil {
				return nil, err
			}
			iso = seceval.AttackViews(views, subj).MeanHitRate
			isolated[k.model] = iso
		}
		r := seceval.AttackRecords(groups[k], subj)
		rep.Tenants = append(rep.Tenants, report.AttackRow{
			Node: k.node, Model: k.model, Runs: r.Runs, MeanBatch: r.MeanBatch,
			HitRate: r.MeanHitRate, IsolatedHitRate: iso,
		})
	}
	return rep, nil
}

// obfuscationTable renders the tap's per-layer obfuscation spend.
func obfuscationTable(atk *attackReport) *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Obfuscation overhead (total %.4fs modeled)", atk.OverheadSeconds),
		Header: []string{"Layer", "Runs", "Injected Events", "Padded Bytes", "Overhead (s)"},
	}
	for _, s := range atk.Obfuscation {
		t.AddRow(s.Layer, fmt.Sprintf("%d", s.Runs), fmt.Sprintf("%d", s.InjectedEvents),
			report.Bytes(s.PaddedBytes), fmt.Sprintf("%.4f", s.OverheadSeconds))
	}
	return t
}

// sameShape reports whether two sample shapes match exactly.
func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runScenarioClient drives a running tbnetd daemon through the phased
// workload over real sockets: the hosted models and their sample shapes come
// from the daemon's /v1/models, the load is synthetic noise of the right
// shape, and traffic is split across every hosted model that shares the
// default model's shape. The report is the client-side view only — the
// daemon's own counters live on its /metrics endpoint.
func runScenarioClient(tgt *scenario.HTTPTarget, target string, phases []scenario.Phase,
	c *commonFlags, stdout, stderr io.Writer) int {
	ctx := context.Background()
	remote, err := tgt.Models(ctx)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	def := remote[0]
	for _, m := range remote {
		if m.Default {
			def = m
		}
	}
	shape := append([]int(nil), def.SampleShape...)
	if len(shape) == 4 {
		shape[0] = 1
	}
	rng := tbnet.NewRNG(c.seed)
	pool := make([]*tbnet.Tensor, 256)
	for i := range pool {
		x := tbnet.NewTensor(shape...)
		rng.FillNormal(x, 0, 1)
		pool[i] = x
	}
	sample := func(i int) *tbnet.Tensor { return pool[i%len(pool)] }

	var shares []scenario.ModelShare
	for _, m := range remote {
		if sameShape(m.SampleShape, def.SampleShape) {
			shares = append(shares, scenario.ModelShare{Name: m.Name, Weight: 1})
		}
	}
	if len(shares) > 1 {
		for i := range phases {
			phases[i].Models = shares
		}
	}

	fmt.Fprintf(stderr, "driving %d phase(s) against %s (%d hosted model(s), default %q)...\n",
		len(phases), target, len(remote), def.Name)
	res, err := scenario.Run(ctx, tgt,
		scenario.Spec{Name: "http:" + def.Name, Seed: c.seed, Phases: phases}, sample)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if c.jsonOut {
		if err := json.NewEncoder(stdout).Encode(struct {
			Scenario *scenario.Result `json:"scenario"`
		}{res}); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	report.ScenarioTable(res).Render(stdout)
	if len(res.PerModel) > 1 {
		report.ScenarioModelTable(res).Render(stdout)
	}
	fmt.Fprintf(stdout, "offered %d requests: %d served, %d shed, %d failed in %.2fs\n",
		res.Offered, res.Served, res.Shed, res.Failed, res.WallSeconds)
	return 0
}
