package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"testing"
	"time"

	"tbnet/internal/core"
	"tbnet/internal/fleet"
	"tbnet/internal/httpd"
	"tbnet/internal/scenario"
	"tbnet/internal/tee"
	"tbnet/internal/tensor"
	"tbnet/internal/zoo"
)

// TestScenarioClientModeEndToEnd drives `tbnet scenario -target` against an
// in-process daemon over a real socket: the CLI discovers the hosted models
// and their shapes from /v1/models, synthesizes the load, and reports the
// client-side phase table — no local fleet, no model build.
func TestScenarioClientModeEndToEnd(t *testing.T) {
	victim := zoo.BuildVGG(zoo.TinyVGGConfig(4), tensor.NewRNG(3))
	tb := core.NewTwoBranch(victim, 4)
	tb.Finalized = true
	dep, err := core.Deploy(tb, tee.RaspberryPi3(), []int{1, 3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fleet.New(dep, fleet.Config{
		Nodes:    []fleet.NodeConfig{{Device: tee.RaspberryPi3(), Workers: 1}},
		MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := httpd.New(httpd.Config{
		Fleet:  f,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	}()

	code, stdout, stderr := runCLI(t,
		"scenario", "-target", "http://"+l.Addr().String(),
		"-spec", "quick:uniform:60:250ms", "-json")
	if code != 0 {
		t.Fatalf("client mode exit = %d\nstderr: %s", code, stderr)
	}
	var out struct {
		Scenario *scenario.Result `json:"scenario"`
	}
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("bad JSON artifact: %v\n%s", err, stdout)
	}
	if out.Scenario == nil || out.Scenario.Served == 0 {
		t.Fatalf("no traffic served through the socket: %s", stdout)
	}
	if out.Scenario.Failed != 0 {
		t.Fatalf("client-mode failures: %+v", out.Scenario)
	}
	if len(out.Scenario.Phases) != 1 || out.Scenario.Phases[0].Name != "quick" {
		t.Fatalf("phase table = %+v", out.Scenario.Phases)
	}
}
