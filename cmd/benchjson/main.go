// Command benchjson converts `go test -bench` text output (read from stdin)
// into one machine-readable JSON document, so CI can upload benchmark
// trajectories (ns/op, B/op, allocs/op, and any custom b.ReportMetric
// units) as stable BENCH_* artifacts.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH_infer.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name exactly as emitted (including any
	// -GOMAXPROCS suffix): a trailing numeric dash segment is ambiguous —
	// sub-benchmark names like "rate-100" are legitimate — so no stripping
	// is attempted. On the single-proc CI runner go test emits no suffix,
	// keeping the trajectory keys stable.
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard testing metrics
	// (allocs/bytes require -benchmem).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries every other value/unit pair (b.ReportMetric output).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the artifact schema.
type Doc struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		res, ok := parseLine(line)
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	return doc, sc.Err()
}

// parseLine decodes "BenchmarkName-P  N  v1 unit1  v2 unit2 ...".
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[fields[i+1]] = v
		}
	}
	return res, true
}
