package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: tbnet/internal/serve
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInferAllocs 	   14359	    165179 ns/op	     216 B/op	       5 allocs/op
BenchmarkServerThroughput/device=rpi3/workers=2-8   100  12345 ns/op  1.5 mean-batch  42 modeled-req/s
PASS
ok  	tbnet/internal/serve	3.8s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.CPU == "" || doc.GoOS != "linux" {
		t.Fatalf("header not parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkInferAllocs" || b0.NsPerOp != 165179 || b0.AllocsPerOp != 5 || b0.BytesPerOp != 216 {
		t.Fatalf("bench 0 = %+v", b0)
	}
	b1 := doc.Benchmarks[1]
	// Names are recorded verbatim: a trailing -N is ambiguous between the
	// GOMAXPROCS suffix and a legitimate sub-benchmark name like "rate-100".
	if b1.Name != "BenchmarkServerThroughput/device=rpi3/workers=2-8" {
		t.Fatalf("name not verbatim: %q", b1.Name)
	}
	if b1.Metrics["mean-batch"] != 1.5 || b1.Metrics["modeled-req/s"] != 42 {
		t.Fatalf("custom metrics = %+v", b1.Metrics)
	}
}
