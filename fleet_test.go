package tbnet

// Facade tests for the fleet surface: option plumbing, error sentinels, and
// one routed end-to-end round trip. Fleet behaviour itself is covered in
// internal/fleet; these tests use a randomly initialized finalized model so
// they stay fast enough for the -race CI pass.

import (
	"context"
	"errors"
	"testing"
	"time"

	"tbnet/internal/zoo"
)

// tinyDeployment builds a deployed untrained tiny model through the facade.
func tinyDeployment(t *testing.T) *Deployment {
	t.Helper()
	victim := zoo.BuildVGG(zoo.TinyVGGConfig(4), NewRNG(1))
	tb := NewTwoBranch(victim, 2)
	tb.Finalized = true
	dep, err := Deploy(tb, RaspberryPi3(), []int{1, 3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestNewFleetRoutesAcrossDevices(t *testing.T) {
	dep := tinyDeployment(t)
	f, err := NewFleet(dep,
		WithDevice("rpi3", 1),
		WithDevice("sgx-desktop", 2),
		WithDevice("jetson-tz", 1),
		WithPolicy(CostAware()),
		WithDeadline(5*time.Second),
		WithMaxInFlight(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x := NewTensor(1, 3, 16, 16)
	NewRNG(3).FillNormal(x, 0, 1)
	want, err := dep.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Infer(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if got != want[0] {
		t.Fatalf("fleet label %d != template label %d", got, want[0])
	}
	st := f.Stats()
	if st.Policy != "cost-aware" || st.Devices != 3 || st.Requests != 1 {
		t.Fatalf("fleet stats wrong: %+v", st)
	}
}

func TestNewFleetDefaultsToTemplateDevice(t *testing.T) {
	dep := tinyDeployment(t)
	f, err := NewFleet(dep)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st := f.Stats()
	if st.Devices != 1 || st.PerDevice[0].Name != "rpi3" {
		t.Fatalf("default fleet = %+v, want single rpi3 node", st.PerDevice)
	}
}

func TestNewFleetOptionValidation(t *testing.T) {
	dep := tinyDeployment(t)
	cases := []struct {
		name string
		opt  FleetOption
	}{
		{"unknown device", WithDevice("abacus", 1)},
		{"zero workers", WithDevice("rpi3", 0)},
		{"nil policy", WithPolicy(nil)},
		{"zero deadline", WithDeadline(0)},
		{"zero max in-flight", WithMaxInFlight(0)},
	}
	for _, c := range cases {
		if _, err := NewFleet(dep, c.opt); !errors.Is(err, ErrBadOption) {
			t.Fatalf("%s: err = %v, want ErrBadOption", c.name, err)
		}
	}
	if _, err := NewFleet(nil); !errors.Is(err, ErrBadOption) {
		t.Fatalf("nil deployment: err = %v, want ErrBadOption", err)
	}
}

// TestFleetShedsThroughFacade: the ErrOverloaded sentinel is matchable on
// the public surface.
func TestFleetShedsThroughFacade(t *testing.T) {
	dep := tinyDeployment(t)
	f, err := NewFleet(dep, WithDevice("rpi3", 1), WithDeadline(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x := NewTensor(1, 3, 16, 16)
	NewRNG(4).FillNormal(x, 0, 1)
	// One lone request sits in an incomplete batch until the default 2ms
	// flush window closes — past the 1ms fleet deadline — and must be shed.
	// Retry a few times in case the host schedules the flush first.
	for i := 0; i < 50; i++ {
		_, err = f.Infer(context.Background(), x)
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}
