package tbnet

// Facade tests for the fleet surface: option plumbing, error sentinels, and
// one routed end-to-end round trip. Fleet behaviour itself is covered in
// internal/fleet; these tests use a randomly initialized finalized model so
// they stay fast enough for the -race CI pass.

import (
	"context"
	"errors"
	"testing"
	"time"

	"tbnet/internal/zoo"
)

// tinyDeployment builds a deployed untrained tiny model through the facade.
func tinyDeployment(t *testing.T) *Deployment {
	t.Helper()
	victim := zoo.BuildVGG(zoo.TinyVGGConfig(4), NewRNG(1))
	tb := NewTwoBranch(victim, 2)
	tb.Finalized = true
	dep, err := Deploy(tb, RaspberryPi3(), []int{1, 3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestNewFleetRoutesAcrossDevices(t *testing.T) {
	dep := tinyDeployment(t)
	f, err := NewFleet(dep,
		WithDevice("rpi3", 1),
		WithDevice("sgx-desktop", 2),
		WithDevice("jetson-tz", 1),
		WithPolicy(CostAware()),
		WithDeadline(5*time.Second),
		WithMaxInFlight(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x := NewTensor(1, 3, 16, 16)
	NewRNG(3).FillNormal(x, 0, 1)
	want, err := dep.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Infer(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if got != want[0] {
		t.Fatalf("fleet label %d != template label %d", got, want[0])
	}
	st := f.Stats()
	if st.Policy != "cost-aware" || st.Devices != 3 || st.Requests != 1 {
		t.Fatalf("fleet stats wrong: %+v", st)
	}
}

func TestNewFleetDefaultsToTemplateDevice(t *testing.T) {
	dep := tinyDeployment(t)
	f, err := NewFleet(dep)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st := f.Stats()
	if st.Devices != 1 || st.PerDevice[0].Name != "rpi3" {
		t.Fatalf("default fleet = %+v, want single rpi3 node", st.PerDevice)
	}
}

func TestNewFleetOptionValidation(t *testing.T) {
	dep := tinyDeployment(t)
	cases := []struct {
		name string
		opt  FleetOption
	}{
		{"unknown device", WithDevice("abacus", 1)},
		{"zero workers", WithDevice("rpi3", 0)},
		{"nil policy", WithPolicy(nil)},
		{"zero deadline", WithDeadline(0)},
		{"zero max in-flight", WithMaxInFlight(0)},
	}
	for _, c := range cases {
		if _, err := NewFleet(dep, c.opt); !errors.Is(err, ErrBadOption) {
			t.Fatalf("%s: err = %v, want ErrBadOption", c.name, err)
		}
	}
	if _, err := NewFleet(nil); !errors.Is(err, ErrBadOption) {
		t.Fatalf("nil deployment: err = %v, want ErrBadOption", err)
	}
}

// TestFleetShedsThroughFacade: the ErrOverloaded sentinel is matchable on
// the public surface.
func TestFleetShedsThroughFacade(t *testing.T) {
	dep := tinyDeployment(t)
	f, err := NewFleet(dep, WithDevice("rpi3", 1), WithDeadline(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x := NewTensor(1, 3, 16, 16)
	NewRNG(4).FillNormal(x, 0, 1)
	// One lone request sits in an incomplete batch until the default 2ms
	// flush window closes — past the 1ms fleet deadline — and must be shed.
	// Retry a few times in case the host schedules the flush first.
	for i := 0; i < 50; i++ {
		_, err = f.Infer(context.Background(), x)
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}

// TestNewFleetAutoscale: WithAutoscale returns a fleet carrying a live
// controller, FleetAutoscaler retrieves it, scaling events reach the
// configured logger, and Close stops the loop.
func TestNewFleetAutoscale(t *testing.T) {
	dep := tinyDeployment(t)
	events := make(chan AutoscaleEvent, 64)
	f, err := NewFleet(dep,
		WithDevice("rpi3", 1),
		WithAutoscale(1, 4),
		WithAutoscaleInterval(2*time.Millisecond),
		WithAutoscaleTuning(1.0, 2, 0),
		WithAutoscaleLogger(func(ev AutoscaleEvent) {
			select {
			case events <- ev:
			default:
			}
		}),
		WithPace(50),
		WithMaxInFlight(1024),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctl := FleetAutoscaler(f)
	if ctl == nil {
		t.Fatal("FleetAutoscaler returned nil for an autoscaled fleet")
	}
	st := ctl.Stats()
	if !st.Running || st.Min != 1 || st.Max != 4 {
		t.Fatalf("controller stats = %+v, want running with bounds [1,4]", st)
	}
	// Park a paced burst so the loop has pressure to react to.
	x := NewTensor(1, 3, 16, 16)
	NewRNG(5).FillNormal(x, 0, 1)
	done := make(chan struct{})
	for i := 0; i < 16; i++ {
		go func() { f.Infer(context.Background(), x); done <- struct{}{} }()
	}
	select {
	case ev := <-events:
		if ev.Node == "" || ev.To < 1 || ev.TotalWorkers < 1 {
			t.Fatalf("malformed scaling event %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("controller never scaled under a parked burst")
	}
	for i := 0; i < 16; i++ {
		<-done
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if ctl.Stats().Running {
		t.Fatal("controller still running after fleet Close")
	}
}

// TestNewFleetAutoscaleValidation: broken autoscale options surface as
// ErrBadOption from NewFleet.
func TestNewFleetAutoscaleValidation(t *testing.T) {
	dep := tinyDeployment(t)
	for _, c := range []struct {
		name string
		opt  FleetOption
	}{
		{"inverted bounds", WithAutoscale(4, 2)},
		{"zero min", WithAutoscale(0, 2)},
		{"zero interval", WithAutoscaleInterval(0)},
		{"zero backlog", WithAutoscaleTuning(0, 2, 0)},
		{"zero hysteresis", WithAutoscaleTuning(1, 0, 0)},
		{"negative cooldown", WithAutoscaleTuning(1, 2, -time.Second)},
		{"unknown spare", WithSpareDevice("abacus")},
		{"nil logger", WithAutoscaleLogger(nil)},
		{"negative pace", WithPace(-1)},
		{"zero fleet queue depth", WithFleetQueueDepth(0)},
		{"bad ewma alpha", WithEWMARouting(1.5)},
		{"bad estimator alpha", WithEstimator(-0.5)},
	} {
		if _, err := NewFleet(dep, c.opt); !errors.Is(err, ErrBadOption) {
			t.Fatalf("%s: err = %v, want ErrBadOption", c.name, err)
		}
	}
}

// TestNewFleetEWMARouting: WithEWMARouting selects the adaptive policy and
// the fleet reports learned estimates after traffic.
func TestNewFleetEWMARouting(t *testing.T) {
	dep := tinyDeployment(t)
	f, err := NewFleet(dep,
		WithDevice("rpi3", 1),
		WithDevice("sgx-desktop", 1),
		WithEWMARouting(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.Stats().Policy; got != "ewma" {
		t.Fatalf("policy = %q, want ewma", got)
	}
	x := NewTensor(1, 3, 16, 16)
	NewRNG(6).FillNormal(x, 0, 1)
	for i := 0; i < 8; i++ {
		if _, err := f.Infer(context.Background(), x); err != nil {
			t.Fatal(err)
		}
	}
	if est := f.Estimates(); len(est) == 0 {
		t.Fatal("no learned estimates after served traffic")
	}
	if FleetAutoscaler(f) != nil {
		t.Fatal("FleetAutoscaler non-nil for a fleet without WithAutoscale")
	}
}
